package methods

import (
	"fmt"
	"sort"

	"fedwcm/internal/fl"
)

// factories maps method names to constructors with the hyperparameters used
// throughout the evaluation (α = 0.1 as in the paper; SAM ρ and proximal μ
// set to the usual literature defaults).
var factories = map[string]func() fl.Method{
	"fedavg":  func() fl.Method { return NewFedAvg() },
	"fedavgm": func() fl.Method { return NewFedAvgM(0.9) },
	"fedcm":   func() fl.Method { return NewFedCM(0.1) },
	"fedcm+focal": func() fl.Method {
		return NewFedCMFocal(0.1, 2)
	},
	"fedcm+balanceloss": func() fl.Method {
		return NewFedCMBalanceLoss(0.1, 1)
	},
	"fedcm+balancesampler": func() fl.Method {
		return NewFedCMBalanceSampler(0.1)
	},
	"fedwcm": func() fl.Method { return NewFedWCM(DefaultWCMOptions()) },
	"fedwcm-x": func() fl.Method {
		opt := DefaultWCMOptions()
		opt.QuantityWeighted = true
		return NewFedWCM(opt)
	},
	"fedwcm-absscore": func() fl.Method {
		opt := DefaultWCMOptions()
		opt.Score = ScoreAbsDeviation
		return NewFedWCM(opt)
	},
	"fedwcm-weightonly": func() fl.Method {
		opt := DefaultWCMOptions()
		opt.DisableAdaptiveAlpha = true
		return NewFedWCM(opt)
	},
	"fedwcm-alphaonly": func() fl.Method {
		opt := DefaultWCMOptions()
		opt.DisableWeighting = true
		return NewFedWCM(opt)
	},
	"fedprox":   func() fl.Method { return NewFedProx(0.01) },
	"scaffold":  func() fl.Method { return NewSCAFFOLD() },
	"feddyn":    func() fl.Method { return NewFedDyn(0.01) },
	"balancefl": func() fl.Method { return NewBalanceFL(0.5) },
	"fedgrab":   func() fl.Method { return NewFedGraB(0.5) },
	"fedsam":    func() fl.Method { return NewFedSAM(0.05) },
	"mofedsam":  func() fl.Method { return NewMoFedSAM(0.1, 0.05) },
	"fedlesam":  func() fl.Method { return NewFedLESAM(0.05) },
	"fedsmoo":   func() fl.Method { return NewFedSMOO(0.05, 0.01) },
	"fedspeed":  func() fl.Method { return NewFedSpeed(0.05, 0.01) },
}

// New constructs a method by registry name.
func New(name string) (fl.Method, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("methods: unknown method %q (known: %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New that panics on unknown names (for experiment tables).
func MustNew(name string) fl.Method {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names lists registered method names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
