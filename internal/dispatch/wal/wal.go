// Package wal is the coordinator's write-ahead log: an append-only journal
// of job-state transitions (submit, lease, requeue, complete) that lets a
// restarted coordinator rebuild its queue instead of dumping every
// submitted cell.
//
// On-disk format: a 6-byte magic header ("FWAL1\n") followed by
// length-prefixed frames —
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// where the payload is one record: a type byte followed by
// uvarint-length-prefixed job / worker / status / spec fields and a uvarint
// attempt counter. Every Append is fsync'd before it returns (concurrent
// appenders share one fsync via group commit), so an acknowledged
// submission survives power loss. AppendAsync rides the same group commit
// without waiting for it — the right trade for drain-path transitions
// (lease/requeue/complete) whose loss recovery tolerates by design.
//
// Recovery semantics are deliberately asymmetric: a torn tail — a partial
// frame, or a checksum mismatch on the final frame — is the expected
// signature of a crash mid-append and is truncated away, while a checksum
// mismatch anywhere before the tail means the file was damaged after it
// was written (bit rot, truncation in the middle) and Open fails closed
// with ErrCorrupt rather than silently dropping acknowledged work.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"fedwcm/internal/store"
)

// Type enumerates the journaled transitions.
type Type uint8

const (
	// TypeSubmit journals a job entering the queue (carries the spec).
	TypeSubmit Type = iota + 1
	// TypeLease journals a lease grant (carries the worker and the
	// post-grant attempt count).
	TypeLease
	// TypeRequeue journals a job returning to the queue (carries the
	// post-adjustment attempt count: unchanged after expiry, refunded after
	// a clean handover).
	TypeRequeue
	// TypeComplete journals a terminal outcome; replay drops the job.
	TypeComplete
)

// Record is one journaled transition.
type Record struct {
	Type     Type
	Job      string // fingerprint
	Worker   string // lease holder (TypeLease only)
	Attempts int    // leases granted so far (TypeLease / TypeRequeue / compacted TypeSubmit)
	Status   string // terminal status (TypeComplete): "stored" or "failed"
	Spec     []byte // canonical spec JSON (TypeSubmit only)
}

// JobState is one live (non-terminal) job reconstructed by replay.
type JobState struct {
	ID       string
	Spec     []byte
	Attempts int    // leases granted before the crash
	Leased   bool   // a lease was active when the log ended
	Worker   string // last lease holder (informational)
}

// Recovery reports what Open found in an existing log.
type Recovery struct {
	Jobs      []JobState // live jobs, in submission order
	Records   int        // valid records replayed
	Completes int        // terminal records seen (compaction pressure)
	Torn      bool       // the log ended in a partial or half-written frame
	Truncated int64      // bytes dropped from the torn tail
}

// ErrCorrupt means the log is damaged before its tail: a record that was
// once durable no longer checksums. Open fails rather than replaying a
// partial history as if it were complete.
var ErrCorrupt = errors.New("wal: corrupt record")

// errClosed poisons appends after Close.
var errClosed = errors.New("wal: closed")

const (
	fileMagic = "FWAL1\n"
	headerLen = 8 // u32 length + u32 CRC-32, little-endian
	// maxRecord bounds one frame's payload. Specs are a few KB of canonical
	// JSON; anything claiming more is a corrupt length field, not a record.
	maxRecord = 8 << 20
	// preallocChunk is how far the file is extended ahead of the write
	// offset. Appends then land inside the allocated size, so the per-commit
	// sync is a data-only fdatasync instead of an fsync that must also
	// journal an inode size change — the journal commit is what serializes
	// concurrent WALs (one per shard) on a shared filesystem. The zeroed
	// tail doubles as the end-of-log marker: replay stops at the first
	// all-zero frame header, since a real frame is never empty.
	preallocChunk = 1 << 20
)

// Log is an open write-ahead log. Append is safe for concurrent use;
// concurrent callers share fsyncs via group commit (one leader flushes the
// combined buffer while the rest wait on its generation).
type Log struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	buf     []byte     // frames appended but not yet flushed
	seq     uint64     // append generations buffered so far
	synced  uint64     // generations durably on disk
	syncing bool       // the background flush leader is running
	wait    *flushWait // outcome of the flush covering the current buffer
	off     int64      // write offset: end of the framed prefix
	alloc   int64      // preallocated file size (off <= alloc)
	err     error      // sticky: a failed write or fsync poisons the log
}

// flushWait carries one group commit's outcome to its waiters: done is
// closed once every frame buffered before the batch snapshot is durable
// (or the flush failed), and err is written before the close. Waiters
// block on the channel they captured while buffering and never reacquire
// l.mu afterwards — with hundreds of concurrent appenders, waking a cohort
// through a shared mutex is a lock convoy that costs more than the sync it
// waits on.
type flushWait struct {
	done chan struct{}
	err  error
}

// Open opens (creating if absent) the log at path, replays it, and returns
// the log positioned for appends plus what recovery found. A torn tail is
// truncated away and noted in Recovery; damage before the tail returns
// ErrCorrupt and no log.
func Open(path string) (*Log, *Recovery, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("wal: empty path")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, end, rerr := replay(f)
	if rerr != nil {
		f.Close()
		return nil, nil, rerr
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if end < info.Size() {
		// Torn or preallocated tail: drop it now so a later crash cannot
		// concatenate new frames onto half a frame and turn a benign tear
		// into ErrCorrupt.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
	}
	// replay left the descriptor at the old EOF; reposition onto the valid
	// prefix so the next write (magic or frame) lands on the boundary.
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if end == 0 {
		// Fresh (or fully torn) file: stamp the magic and make the file's
		// existence durable before any record is acknowledged.
		if _, err := f.Write([]byte(fileMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		end = int64(len(fileMagic))
	}
	// Extend ahead of the write offset (a sparse, all-zero tail) and journal
	// the new size once, so steady-state commits are data-only fdatasyncs.
	alloc := end + preallocChunk
	if err := f.Truncate(alloc); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: preallocating: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	if err := store.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: path, off: end, alloc: alloc}
	l.wait = &flushWait{done: make(chan struct{})}
	return l, rec, nil
}

// Append journals the records and returns once they are durable. Multiple
// records in one call land atomically with respect to recovery ordering
// (they share one flush). An error is sticky: once a write or fsync fails
// the log refuses further appends, so callers fail closed instead of
// acknowledging work that was never persisted.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var frames []byte
	for i := range recs {
		frames = appendFrame(frames, &recs[i])
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.buf = append(l.buf, frames...)
	l.seq++
	if !l.syncing {
		l.syncing = true
		go l.flushLoop()
	}
	// Capturing the wait in the same critical section as the buffering
	// guarantees the flush that rotates it covers our frames; the channel
	// close is the durability (or failure) signal.
	w := l.wait
	l.mu.Unlock()
	<-w.done
	return w.err
}

// AppendAsync buffers the records for the next group commit and returns
// without waiting for the fsync. A background flush leader (started here if
// none is running) writes and syncs the batch; until it does, a crash can
// drop the records. That makes AppendAsync correct only for transitions
// that are individually safe to lose — lease grants, requeues, completes —
// where replaying the pre-transition state is benign. Submissions must stay
// on Append: acknowledging a spec that was never persisted loses work.
// Ordering is preserved relative to every other append (sync or async):
// frames share one buffer, so recovery replays them in call order. A sticky
// write/fsync error from a prior flush is returned just like Append's.
func (l *Log) AppendAsync(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var frames []byte
	for i := range recs {
		frames = appendFrame(frames, &recs[i])
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.buf = append(l.buf, frames...)
	l.seq++
	if !l.syncing {
		l.syncing = true
		go l.flushLoop()
	}
	return nil
}

// flushLoop is the background commit leader spawned by the first append
// that finds no leader running: it drains the buffer in write+sync batches
// until nothing is pending, so a burst of appends amortizes into a handful
// of syncs instead of one per record. Entered with l.syncing already
// claimed by the spawner. On exit the current wait is rotated and closed:
// when the buffer drained cleanly no appender can hold it with unflushed
// frames (buffering and capture share one critical section, and every
// buffered frame was snapshotted), so only Close/Compact-style observers
// wake; on a sticky error it fails any waiters the dying flush stranded.
func (l *Log) flushLoop() {
	l.mu.Lock()
	for l.err == nil && len(l.buf) > 0 {
		l.flushBatchLocked()
	}
	w := l.wait
	l.wait = &flushWait{done: make(chan struct{})}
	w.err = l.err
	close(w.done)
	l.syncing = false
	l.mu.Unlock()
}

// accumulateWindow bounds how long a commit leader waits for concurrent
// appenders to land in the buffer before flushing. Without it the leader
// fires the moment it claims the token — routinely committing a one-record
// batch while the rest of a woken submitter cohort is still being
// scheduled, which degrades group commit into sync-per-record. The window
// only applies when more than one append generation is pending, so a lone
// appender pays nothing. Accumulation yields the processor rather than
// sleeping: timer sleeps on Linux round up to ~1ms, an order of magnitude
// more than the sync they'd be amortizing.
const accumulateWindow = 200 * time.Microsecond

// flushBatchLocked writes and syncs everything buffered so far on behalf
// of every waiter. The caller holds l.mu with l.syncing claimed; the lock
// is dropped around the IO so appenders can keep buffering into the next
// batch, and waiters are woken once the batch's generation is durable.
// Inside the preallocated region the sync is a data-only fdatasync; when
// the batch would outgrow the allocation, the file is extended first and
// that extension's size change is journaled by a full fsync.
func (l *Log) flushBatchLocked() {
	if l.seq-l.synced > 1 {
		// Concurrent appenders in flight: give stragglers a short window to
		// join this batch instead of each paying their own sync. Yield until
		// the buffer stops growing or the window closes.
		deadline := time.Now().Add(accumulateWindow)
		for {
			n := len(l.buf)
			l.mu.Unlock()
			for i := 0; i < 8; i++ {
				runtime.Gosched()
			}
			l.mu.Lock()
			if len(l.buf) == n || l.err != nil || time.Now().After(deadline) {
				break
			}
		}
	}
	batch := l.buf
	flushed := l.seq
	// Rotate the wait at snapshot time: every waiter that buffered before
	// this point holds w (closed below, once the batch is durable); anyone
	// arriving during the IO parks on the fresh one for the next flush.
	w := l.wait
	l.wait = &flushWait{done: make(chan struct{})}
	l.buf = nil
	f, off, alloc := l.f, l.off, l.alloc
	l.mu.Unlock()
	var ferr error
	grew := false
	if off+int64(len(batch)) > alloc {
		alloc = off + int64(len(batch)) + preallocChunk
		ferr = f.Truncate(alloc)
		grew = true
	}
	if ferr == nil {
		if _, werr := f.Write(batch); werr != nil {
			ferr = werr
		} else if grew {
			ferr = f.Sync()
		} else {
			ferr = datasync(f)
		}
	}
	l.mu.Lock()
	if ferr != nil {
		l.err = fmt.Errorf("wal: append: %w", ferr)
		w.err = l.err
	} else {
		l.off = off + int64(len(batch))
		l.alloc = alloc
		if l.synced < flushed {
			l.synced = flushed
		}
	}
	close(w.done)
}

// Size returns the framed length of the log — the bytes replay would scan,
// excluding any unflushed buffer and the preallocated zero tail.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.off
}

// Compact atomically replaces the log's contents with live: a fresh file
// is written beside the log, fsync'd, and renamed over it. The caller must
// guarantee no concurrent Append (the coordinator holds its WAL gate
// exclusively during checkpoints); live is typically one TypeSubmit — plus
// one TypeLease for held leases — per non-terminal job.
func (l *Log) Compact(live []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing {
		w := l.wait
		l.mu.Unlock()
		<-w.done
		l.mu.Lock()
	}
	if l.err != nil {
		return l.err
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, ".wal-compact-*")
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	frames := []byte(fileMagic)
	for i := range live {
		frames = appendFrame(frames, &live[i])
	}
	// Any frames buffered by appenders that were pre-empted before flushing
	// describe transitions older than the caller's snapshot; carrying them
	// into the new file keeps their Append calls truthful (replay tolerates
	// stale lease/complete records for unknown jobs).
	frames = append(frames, l.buf...)
	l.buf = nil
	l.synced = l.seq
	_, werr := tmp.Write(frames)
	if werr == nil {
		// Preallocate the replacement like Open does, so appends after the
		// checkpoint stay on the data-only sync path.
		werr = tmp.Truncate(int64(len(frames)) + preallocChunk)
	}
	if werr == nil {
		werr = store.SyncFile(tmp)
	}
	if werr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: compact: %w", werr)
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := store.SyncDir(dir); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	// tmp's descriptor now names the live log file (the rename moved the
	// inode, not the handle); adopt it and retire the old one.
	l.f.Close()
	l.f = tmp
	l.off = int64(len(frames))
	l.alloc = l.off + preallocChunk
	// Anyone whose buffered frames we carried is now durable.
	w := l.wait
	l.wait = &flushWait{done: make(chan struct{})}
	close(w.done)
	return nil
}

// Close flushes any frames still parked by AppendAsync (a clean shutdown
// should not demote buffered transitions into crash losses), then releases
// the file. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	for l.syncing {
		w := l.wait
		l.mu.Unlock()
		<-w.done
		l.mu.Lock()
	}
	if l.err == nil && len(l.buf) > 0 {
		l.syncing = true
		l.flushBatchLocked()
		l.syncing = false
	}
	f := l.f
	off := l.off
	clean := l.err == nil
	l.f = nil
	if l.err == nil {
		l.err = errClosed
	}
	// Fail anyone racing an append against Close rather than stranding them.
	w := l.wait
	l.wait = &flushWait{done: make(chan struct{})}
	w.err = l.err
	close(w.done)
	l.mu.Unlock()
	if f != nil {
		if clean {
			// Trim the preallocated zero tail so the closed file ends at the
			// framed prefix (a reopen re-extends it).
			if err := f.Truncate(off); err == nil {
				f.Sync()
			}
		}
		return f.Close()
	}
	return nil
}

// allZero reports whether b holds only zero bytes — the signature of the
// untouched preallocated region.
func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// --- encoding ---

func appendFrame(dst []byte, r *Record) []byte {
	payload := encodePayload(r)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

func encodePayload(r *Record) []byte {
	out := []byte{byte(r.Type)}
	out = appendString(out, r.Job)
	out = appendString(out, r.Worker)
	out = binary.AppendUvarint(out, uint64(max(r.Attempts, 0)))
	out = appendString(out, r.Status)
	out = appendString(out, string(r.Spec))
	return out
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	r.Type = Type(p[0])
	if r.Type < TypeSubmit || r.Type > TypeComplete {
		return r, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, p[0])
	}
	p = p[1:]
	var err error
	if r.Job, p, err = readString(p); err != nil {
		return r, err
	}
	if r.Worker, p, err = readString(p); err != nil {
		return r, err
	}
	att, n := binary.Uvarint(p)
	if n <= 0 || att > 1<<31 {
		return r, fmt.Errorf("%w: bad attempt varint", ErrCorrupt)
	}
	r.Attempts = int(att)
	p = p[n:]
	if r.Status, p, err = readString(p); err != nil {
		return r, err
	}
	var spec string
	if spec, p, err = readString(p); err != nil {
		return r, err
	}
	if spec != "" {
		r.Spec = []byte(spec)
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return r, nil
}

func readString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", nil, fmt.Errorf("%w: bad string field", ErrCorrupt)
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}

// --- replay ---

// replay scans f from the start and folds every valid record into live job
// state. It returns the recovery summary and the byte offset of the valid
// prefix (everything past it is a torn tail the caller truncates).
func replay(f *os.File) (*Recovery, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	rec := &Recovery{}
	if len(data) < len(fileMagic) {
		// Nothing, or a tear inside the magic itself (crash between create
		// and the header fsync): recover to an empty log.
		rec.Torn = len(data) > 0
		rec.Truncated = int64(len(data))
		return rec, 0, nil
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, fmt.Errorf("%w: bad file header", ErrCorrupt)
	}
	jobs := make(map[string]*JobState)
	var order []string
	off := len(fileMagic)
	for off < len(data) {
		if len(data)-off < headerLen {
			rec.Torn, rec.Truncated = true, int64(len(data)-off)
			break
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen == 0 && sum == 0 {
			// An all-zero header is the preallocated tail: the clean end of
			// the log (a real frame is never empty). Frames beyond it mean a
			// batch whose pages persisted out of order before the crash —
			// the sync covering this hole never completed, so nothing past
			// it was ever acknowledged: truncate as a tear, don't replay it.
			if !allZero(data[off:]) {
				rec.Torn, rec.Truncated = true, int64(len(data)-off)
			}
			break
		}
		if plen > maxRecord {
			if allZero(data[off+headerLen:]) {
				// A header torn mid-write, followed by nothing but the zeroed
				// allocation: the crash signature, not damage.
				rec.Torn, rec.Truncated = true, int64(len(data)-off)
				break
			}
			return nil, 0, fmt.Errorf("%w: frame at offset %d claims %d bytes", ErrCorrupt, off, plen)
		}
		if uint32(len(data)-off-headerLen) < plen {
			rec.Torn, rec.Truncated = true, int64(len(data)-off)
			break
		}
		payload := data[off+headerLen : off+headerLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			if allZero(data[off+headerLen+int(plen):]) {
				// The final frame (nothing but preallocated zeros after it):
				// indistinguishable from a crash that tore the payload write.
				// Truncate, don't fail. Framed data after the mismatch means
				// damage to something that was once durable.
				rec.Torn, rec.Truncated = true, int64(len(data)-off)
				break
			}
			return nil, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			return nil, 0, fmt.Errorf("wal: frame at offset %d: %w", off, derr)
		}
		applyRecord(jobs, &order, r, rec)
		rec.Records++
		off += headerLen + int(plen)
	}
	for _, id := range order {
		if j, ok := jobs[id]; ok && j != nil {
			rec.Jobs = append(rec.Jobs, *j)
			delete(jobs, id) // a resubmitted id appears once per live epoch
		}
	}
	return rec, int64(off), nil
}

// applyRecord folds one record into the live-job map. Records for unknown
// jobs (stale lease/requeue/complete surviving a compaction race) are
// ignored: replay is a conservative fold, not a strict state machine.
func applyRecord(jobs map[string]*JobState, order *[]string, r Record, rec *Recovery) {
	switch r.Type {
	case TypeSubmit:
		if jobs[r.Job] == nil {
			jobs[r.Job] = &JobState{ID: r.Job, Spec: r.Spec, Attempts: r.Attempts}
			*order = append(*order, r.Job)
		}
	case TypeLease:
		if j := jobs[r.Job]; j != nil {
			j.Leased, j.Worker, j.Attempts = true, r.Worker, r.Attempts
		}
	case TypeRequeue:
		if j := jobs[r.Job]; j != nil {
			j.Leased, j.Worker, j.Attempts = false, "", r.Attempts
		}
	case TypeComplete:
		rec.Completes++
		delete(jobs, r.Job)
	}
}
