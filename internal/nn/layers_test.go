package nn

import (
	"math"
	"testing"

	"fedwcm/internal/loss"
	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

// ceLossOf adapts cross-entropy over fixed labels into the GradCheck shape.
func ceLossOf(labels []int) func(out *tensor.Dense) (float64, *tensor.Dense) {
	return func(out *tensor.Dense) (float64, *tensor.Dense) {
		return loss.CrossEntropy{}.LossAndGrad(out, labels)
	}
}

func randInput(seed uint64, n, d int) *tensor.Dense {
	r := xrand.New(seed)
	x := tensor.NewDense(n, d)
	r.FillNorm(x.Data, 0, 1)
	return x
}

func randLabels(seed uint64, n, classes int) []int {
	r := xrand.New(seed)
	l := make([]int, n)
	for i := range l {
		l[i] = r.Intn(classes)
	}
	return l
}

func checkGrads(t *testing.T, net *Network, x *tensor.Dense, labels []int, tol float64) {
	t.Helper()
	res := GradCheck(net, x, ceLossOf(labels), 1e-5)
	if res.MaxRelErr > tol {
		t.Fatalf("gradient check failed: max rel err %v at %s[%d]", res.MaxRelErr, res.Param, res.Index)
	}
}

func TestLinearGradients(t *testing.T) {
	r := xrand.New(1)
	net := WrapNetwork(4, 3, NewLinear(r, 4, 3))
	checkGrads(t, net, randInput(2, 5, 4), randLabels(3, 5, 3), 1e-5)
}

func TestLinearForwardKnownValues(t *testing.T) {
	r := xrand.New(1)
	l := NewLinear(r, 2, 2)
	copy(l.W.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]] (in×out)
	copy(l.B.Data, []float64{10, 20})
	out := l.Forward(tensor.FromSlice(1, 2, []float64{1, 1}), true)
	if out.At(0, 0) != 14 || out.At(0, 1) != 26 {
		t.Fatalf("Linear forward got %v", out.Data)
	}
}

func TestMLPGradients(t *testing.T) {
	net := NewMLP(7, 6, []int{8, 5}, 4, false)
	checkGrads(t, net, randInput(8, 6, 6), randLabels(9, 6, 4), 1e-4)
}

func TestMLPWithBatchNormGradients(t *testing.T) {
	net := NewMLP(11, 5, []int{6}, 3, true)
	checkGrads(t, net, randInput(12, 7, 5), randLabels(13, 7, 3), 1e-4)
}

func TestActivationGradients(t *testing.T) {
	for name, act := range map[string]Layer{
		"relu":      NewReLU(),
		"leakyrelu": NewLeakyReLU(0.1),
		"tanh":      NewTanh(),
	} {
		r := xrand.New(21)
		net := WrapNetwork(5, 3, NewLinear(r, 5, 6), act, NewLinearXavier(r, 6, 3))
		res := GradCheck(net, randInput(22, 6, 5), ceLossOf(randLabels(23, 6, 3)), 1e-5)
		if res.MaxRelErr > 2e-4 {
			t.Errorf("%s: max rel err %v at %s[%d]", name, res.MaxRelErr, res.Param, res.Index)
		}
	}
}

func TestReLUForward(t *testing.T) {
	relu := NewReLU()
	out := relu.Forward(tensor.FromSlice(1, 3, []float64{-1, 0, 2}), true)
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 || out.At(0, 2) != 2 {
		t.Fatalf("ReLU forward got %v", out.Data)
	}
	dx := relu.Backward(tensor.FromSlice(1, 3, []float64{1, 1, 1}))
	if dx.At(0, 0) != 0 || dx.At(0, 2) != 1 {
		t.Fatalf("ReLU backward got %v", dx.Data)
	}
}

// naiveConv is a direct convolution reference for the im2col implementation.
func naiveConv(l *Conv2D, x *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(x.R, l.OutDim())
	for s := 0; s < x.R; s++ {
		img := x.Row(s)
		for oc := 0; oc < l.OutC; oc++ {
			for oy := 0; oy < l.OutH; oy++ {
				for ox := 0; ox < l.OutW; ox++ {
					sum := l.B.Data[oc]
					for c := 0; c < l.InC; c++ {
						for ky := 0; ky < l.KH; ky++ {
							iy := oy*l.Stride + ky - l.Pad
							if iy < 0 || iy >= l.H {
								continue
							}
							for kx := 0; kx < l.KW; kx++ {
								ix := ox*l.Stride + kx - l.Pad
								if ix < 0 || ix >= l.W {
									continue
								}
								wIdx := ((oc*l.InC+c)*l.KH+ky)*l.KW + kx
								sum += l.Wt.Data[wIdx] * img[c*l.H*l.W+iy*l.W+ix]
							}
						}
					}
					out.Row(s)[(oc*l.OutH+oy)*l.OutW+ox] = sum
				}
			}
		}
	}
	return out
}

func TestConvMatchesNaive(t *testing.T) {
	cases := []struct{ inC, h, w, outC, k, stride, pad int }{
		{1, 5, 5, 2, 3, 1, 1},
		{2, 6, 6, 3, 3, 2, 1},
		{3, 4, 4, 2, 2, 1, 0},
		{1, 7, 5, 4, 3, 2, 0},
	}
	for _, c := range cases {
		r := xrand.New(31)
		l := NewConv2D(r, c.inC, c.h, c.w, c.outC, c.k, c.stride, c.pad)
		x := randInput(32, 3, c.inC*c.h*c.w)
		got := l.Forward(x, true)
		want := naiveConv(l, x)
		if !tensor.Equal(got, want, 1e-10) {
			t.Fatalf("conv %+v mismatch", c)
		}
	}
}

func TestConvGradients(t *testing.T) {
	r := xrand.New(41)
	conv := NewConv2D(r, 2, 4, 4, 3, 3, 1, 1)
	net := WrapNetwork(2*4*4, 2,
		conv,
		NewReLU(),
		NewGlobalAvgPool(3, 4, 4),
		NewLinearXavier(r, 3, 2),
	)
	checkGrads(t, net, randInput(42, 4, 2*4*4), randLabels(43, 4, 2), 2e-4)
}

func TestConvStridedGradients(t *testing.T) {
	r := xrand.New(44)
	conv := NewConv2D(r, 1, 5, 5, 2, 3, 2, 1)
	net := WrapNetwork(25, 2,
		conv,
		NewGlobalAvgPool(2, conv.OutH, conv.OutW),
		NewLinearXavier(r, 2, 2),
	)
	checkGrads(t, net, randInput(45, 3, 25), randLabels(46, 3, 2), 2e-4)
}

func TestMaxPoolForwardBackward(t *testing.T) {
	// 1 channel, 4x4 image, 2x2 pool stride 2.
	pool := NewMaxPool2D(1, 4, 4, 2, 2)
	img := tensor.FromSlice(1, 16, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out := pool.Forward(img, true)
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("MaxPool forward got %v want %v", out.Data, want)
		}
	}
	dx := pool.Backward(tensor.FromSlice(1, 4, []float64{1, 2, 3, 4}))
	if dx.Data[5] != 1 || dx.Data[7] != 2 || dx.Data[13] != 3 || dx.Data[15] != 4 {
		t.Fatalf("MaxPool backward got %v", dx.Data)
	}
	if tensor.Sum(dx.Data) != 10 {
		t.Fatalf("MaxPool backward should conserve gradient mass, got %v", tensor.Sum(dx.Data))
	}
}

func TestMaxPoolGradients(t *testing.T) {
	r := xrand.New(51)
	net := WrapNetwork(16, 2,
		NewConv2D(r, 1, 4, 4, 2, 3, 1, 1),
		NewMaxPool2D(2, 4, 4, 2, 2),
		NewGlobalAvgPool(2, 2, 2),
		NewLinearXavier(r, 2, 2),
	)
	checkGrads(t, net, randInput(52, 3, 16), randLabels(53, 3, 2), 2e-4)
}

func TestGlobalAvgPool(t *testing.T) {
	gap := NewGlobalAvgPool(2, 2, 2)
	x := tensor.FromSlice(1, 8, []float64{1, 2, 3, 4, 10, 20, 30, 40})
	out := gap.Forward(x, true)
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 25 {
		t.Fatalf("GAP forward got %v", out.Data)
	}
	dx := gap.Backward(tensor.FromSlice(1, 2, []float64{4, 8}))
	for i := 0; i < 4; i++ {
		if dx.Data[i] != 1 || dx.Data[4+i] != 2 {
			t.Fatalf("GAP backward got %v", dx.Data)
		}
	}
}

func TestBatchNormTrainStats(t *testing.T) {
	bn := NewBatchNorm(1, 1)
	x := tensor.FromSlice(4, 1, []float64{1, 2, 3, 4})
	out := bn.Forward(x, true)
	// normalised output should have mean ~0, var ~1
	if m := tensor.Mean(out.Data); math.Abs(m) > 1e-9 {
		t.Errorf("BN output mean %v, want 0", m)
	}
	variance := 0.0
	for _, v := range out.Data {
		variance += v * v
	}
	variance /= 4
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("BN output variance %v, want ~1", variance)
	}
	// running stats moved toward batch stats
	if bn.RunMean.Data[0] <= 0 {
		t.Errorf("running mean should move toward 2.5, got %v", bn.RunMean.Data[0])
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1, 1)
	bn.RunMean.Data[0] = 10
	bn.RunVar.Data[0] = 4
	x := tensor.FromSlice(1, 1, []float64{12})
	out := bn.Forward(x, false)
	want := (12.0 - 10) / math.Sqrt(4+bn.Eps)
	if math.Abs(out.At(0, 0)-want) > 1e-9 {
		t.Fatalf("BN eval got %v want %v", out.At(0, 0), want)
	}
}

func TestBatchNorm2DGradients(t *testing.T) {
	r := xrand.New(61)
	net := WrapNetwork(2*3*3, 2,
		NewConv2D(r, 2, 3, 3, 2, 3, 1, 1),
		NewBatchNorm(2, 9),
		NewReLU(),
		NewGlobalAvgPool(2, 3, 3),
		NewLinearXavier(r, 2, 2),
	)
	checkGrads(t, net, randInput(62, 5, 18), randLabels(63, 5, 2), 5e-4)
}

func TestResidualIdentityGradients(t *testing.T) {
	r := xrand.New(71)
	body := NewSequential(NewLinear(r, 6, 6), NewTanh(), NewLinear(r, 6, 6))
	net := WrapNetwork(6, 3,
		NewResidual(body),
		NewLinearXavier(r, 6, 3),
	)
	checkGrads(t, net, randInput(72, 4, 6), randLabels(73, 4, 3), 1e-4)
}

func TestResidualProjGradients(t *testing.T) {
	r := xrand.New(74)
	body := NewSequential(NewLinear(r, 5, 7), NewTanh())
	proj := NewLinear(r, 5, 7)
	net := WrapNetwork(5, 3,
		NewResidualProj(body, proj),
		NewLinearXavier(r, 7, 3),
	)
	checkGrads(t, net, randInput(75, 4, 5), randLabels(76, 4, 3), 1e-4)
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	r := xrand.New(77)
	res := NewResidual(NewLinear(r, 4, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("identity residual with shape change must panic")
		}
	}()
	res.Forward(tensor.NewDense(1, 4), true)
}

func TestDropoutTrainVsEval(t *testing.T) {
	d := NewDropout(xrand.New(81), 0.5)
	x := tensor.NewDense(1, 1000)
	tensor.Fill(x.Data, 1)
	evalOut := d.Forward(x, false)
	for _, v := range evalOut.Data {
		if v != 1 {
			t.Fatal("dropout must be identity in eval mode")
		}
	}
	trainOut := d.Forward(x, true)
	zeros := 0
	for _, v := range trainOut.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor should be scaled to 2, got %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout p=0.5 zeroed %d/1000", zeros)
	}
	// mean approximately preserved
	if m := tensor.Mean(trainOut.Data); math.Abs(m-1) > 0.1 {
		t.Fatalf("dropout train mean %v, want ~1", m)
	}
}

func TestResNetLiteShapesAndGradients(t *testing.T) {
	net := NewResNetLite(91, 1, 6, 6, 3, 4)
	x := randInput(92, 2, 36)
	out := net.Forward(x, true)
	if out.R != 2 || out.C != 3 {
		t.Fatalf("ResNetLite output shape %dx%d, want 2x3", out.R, out.C)
	}
	res := GradCheck(net, x, ceLossOf(randLabels(93, 2, 3)), 1e-5)
	if res.MaxRelErr > 1e-3 {
		t.Fatalf("ResNetLite gradient check: %v at %s[%d]", res.MaxRelErr, res.Param, res.Index)
	}
}
