package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fedwcm/internal/loss"
	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

func TestVectorRoundTrip(t *testing.T) {
	net := NewMLP(1, 4, []int{5}, 3, true)
	v := net.Vector()
	// mutate, then restore
	net2 := NewMLP(2, 4, []int{5}, 3, true)
	net2.SetVector(v)
	if d := tensor.L2Dist(v, net2.Vector()); d != 0 {
		t.Fatalf("SetVector/Vector roundtrip drifted by %v", d)
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		net := NewMLP(seed, 3, []int{4}, 2, false)
		r := xrand.New(seed + 1)
		v := make([]float64, net.NumParams())
		r.FillNorm(v, 0, 1)
		net.SetVector(v)
		got := net.Vector()
		return tensor.L2Dist(v, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSameSeedSameInit(t *testing.T) {
	a := NewMLP(7, 4, []int{6}, 3, false)
	b := NewMLP(7, 4, []int{6}, 3, false)
	if tensor.L2Dist(a.Vector(), b.Vector()) != 0 {
		t.Fatal("identical seeds must produce identical init")
	}
	c := NewMLP(8, 4, []int{6}, 3, false)
	if tensor.L2Dist(a.Vector(), c.Vector()) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestStepSkipsStatParams(t *testing.T) {
	net := NewMLP(1, 2, []int{3}, 2, true)
	// find the BN running-stat params and give everything fake gradients
	for _, p := range net.Params() {
		for i := range p.Grad {
			p.Grad[i] = 1
		}
	}
	var runMeanBefore []float64
	for _, p := range net.Params() {
		if p.Name == "bn.runmean" {
			runMeanBefore = tensor.CopyVec(p.Data)
		}
	}
	net.Step(0.5)
	for _, p := range net.Params() {
		if p.Name == "bn.runmean" {
			if tensor.L2Dist(p.Data, runMeanBefore) != 0 {
				t.Fatal("Step must not update Stat params")
			}
		}
		if p.Name == "linear.B" {
			if p.Data[0] != -0.5 {
				t.Fatalf("bias should move by -lr*grad, got %v", p.Data[0])
			}
			break
		}
	}
}

func TestStepVecMatchesStep(t *testing.T) {
	a := NewMLP(3, 4, []int{5}, 2, true)
	b := NewMLP(3, 4, []int{5}, 2, true)
	r := xrand.New(4)
	g := make([]float64, a.NumParams())
	r.FillNorm(g, 0, 1)
	// place g into a's param grads and step; StepVec on b with same vector
	off := 0
	for _, p := range a.Params() {
		copy(p.Grad, g[off:off+len(p.Data)])
		off += len(p.Data)
	}
	a.Step(0.3)
	b.StepVec(0.3, g)
	if d := tensor.L2Dist(a.Vector(), b.Vector()); d > 1e-12 {
		t.Fatalf("StepVec differs from Step by %v", d)
	}
}

func TestStatMask(t *testing.T) {
	net := NewMLP(5, 4, []int{3}, 2, true)
	mask := net.StatMask()
	statCount := 0
	for _, m := range mask {
		if m {
			statCount++
		}
	}
	// one BN layer with 3 channels: runmean+runvar = 6 stat scalars
	if statCount != 6 {
		t.Fatalf("stat scalar count %d, want 6", statCount)
	}
	plain := NewMLP(5, 4, []int{3}, 2, false)
	for _, m := range plain.StatMask() {
		if m {
			t.Fatal("plain MLP should have no stat params")
		}
	}
}

func TestZeroGrad(t *testing.T) {
	net := NewMLP(6, 3, []int{4}, 2, false)
	for _, p := range net.Params() {
		for i := range p.Grad {
			p.Grad[i] = 3
		}
	}
	net.ZeroGrad()
	for _, v := range net.GradVector() {
		if v != 0 {
			t.Fatal("ZeroGrad left residue")
		}
	}
}

// TestMLPOverfitsTinyDataset is the classic smoke test: a small MLP trained
// by plain SGD must drive training accuracy to 100% on a separable toy set.
func TestMLPOverfitsTinyDataset(t *testing.T) {
	r := xrand.New(99)
	const n, d, classes = 60, 8, 3
	x := tensor.NewDense(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		r.FillNorm(row, 0, 0.3)
		row[c] += 2.5 // well-separated prototypes
	}
	net := NewMLP(100, d, []int{16}, classes, false)
	ce := loss.CrossEntropy{}
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		_, dl := ce.LossAndGrad(logits, labels)
		net.Backward(dl)
		net.Step(0.5)
	}
	pred := net.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct != n {
		t.Fatalf("MLP only fit %d/%d after 200 epochs", correct, n)
	}
}

// TestResNetLiteLearns verifies the CNN path end to end: training loss must
// drop substantially on a small pattern-classification set.
func TestResNetLiteLearns(t *testing.T) {
	r := xrand.New(123)
	const n, c, h, w, classes = 24, 1, 6, 6, 2
	x := tensor.NewDense(n, c*h*w)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		labels[i] = cls
		img := x.Row(i)
		r.FillNorm(img, 0, 0.2)
		// class 0: bright top rows; class 1: bright bottom rows
		for col := 0; col < w; col++ {
			if cls == 0 {
				img[col] += 1.5
			} else {
				img[(h-1)*w+col] += 1.5
			}
		}
	}
	net := NewResNetLite(124, c, h, w, classes, 4)
	ce := loss.CrossEntropy{}
	var first, last float64
	for epoch := 0; epoch < 40; epoch++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		l, dl := ce.LossAndGrad(logits, labels)
		if epoch == 0 {
			first = l
		}
		last = l
		net.Backward(dl)
		net.Step(0.1)
	}
	if last > first*0.5 {
		t.Fatalf("ResNetLite loss barely moved: %v -> %v", first, last)
	}
	pred := net.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < n*3/4 {
		t.Fatalf("ResNetLite train accuracy %d/%d too low", correct, n)
	}
}

func TestPredictShapes(t *testing.T) {
	net := NewSoftmaxRegression(5, 4, 3)
	pred := net.Predict(tensor.NewDense(7, 4))
	if len(pred) != 7 {
		t.Fatalf("Predict returned %d predictions for 7 rows", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= 3 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

func TestHeInitScale(t *testing.T) {
	r := xrand.New(7)
	w := make([]float64, 20000)
	heInit(r, w, 50)
	variance := 0.0
	for _, v := range w {
		variance += v * v
	}
	variance /= float64(len(w))
	want := 2.0 / 50
	if math.Abs(variance-want)/want > 0.1 {
		t.Fatalf("He init variance %v, want ~%v", variance, want)
	}
}

func TestFlattenMismatchPanics(t *testing.T) {
	net := NewMLP(1, 3, []int{2}, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.SetVector(make([]float64, net.NumParams()+1))
}
