package fl

import (
	"sync"

	"fedwcm/internal/obs"
)

// RunMetrics is the fl-layer instrumentation bundle: every handle is
// resolved once at construction, so the round loop touches only atomic
// counters/gauges/histograms — zero allocations and no registry lookups on
// the hot path. Built over a nil registry it is a complete no-op (all
// handles nil), which is how the golden-history tests prove
// instrumentation cannot influence trajectories.
type RunMetrics struct {
	Rounds         *obs.Counter   // fedwcm_fl_rounds_total
	RoundSeconds   *obs.Histogram // fedwcm_fl_round_seconds
	ClientSeconds  *obs.Histogram // fedwcm_fl_client_step_seconds
	ClientsTrained *obs.Counter   // fedwcm_fl_client_steps_total
	Dropped        *obs.Counter   // fedwcm_fl_clients_dropped_total
	Stragglers     *obs.Counter   // fedwcm_fl_stragglers_total (WorkFrac < 1)
	TestAcc        *obs.Gauge     // fedwcm_fl_test_acc
	TrainLoss      *obs.Gauge     // fedwcm_fl_train_loss
	ShotHead       *obs.Gauge     // fedwcm_fl_shot_acc{bucket=head}
	ShotMedium     *obs.Gauge
	ShotTail       *obs.Gauge

	// Buffered-async engine instrumentation (all zero-valued on sync runs).
	AsyncAggs       *obs.Counter   // fedwcm_fl_async_aggregations_total
	AsyncPartial    *obs.Counter   // fedwcm_fl_async_partial_flushes_total
	AsyncEvents     *obs.Counter   // fedwcm_fl_async_events_total
	AsyncWaves      *obs.Counter   // fedwcm_fl_async_waves_total
	AsyncBufferFill *obs.Gauge     // fedwcm_fl_async_buffer_fill
	AsyncClock      *obs.Gauge     // fedwcm_fl_async_virtual_time
	AsyncStaleness  *obs.Histogram // fedwcm_fl_async_staleness

	// diag exposes MetricsReporter values (FedWCM's alpha/q/wmax — the
	// collapse diagnostic) as fedwcm_fl_diag{metric=...}. Children are
	// cached here because Vec.With takes the family lock and allocates its
	// variadic slice: the eval path stays allocation-free after the first
	// evaluation names a metric.
	diagVec *obs.GaugeVec
	diagMu  sync.RWMutex
	diag    map[string]*obs.Gauge
}

// NewRunMetrics resolves the fl metric family on reg. A nil reg returns a
// usable all-no-op bundle.
func NewRunMetrics(reg *obs.Registry) *RunMetrics {
	m := &RunMetrics{diag: make(map[string]*obs.Gauge)}
	if reg == nil {
		return m
	}
	m.Rounds = reg.Counter("fedwcm_fl_rounds_total", "Federated rounds completed.")
	m.RoundSeconds = reg.Histogram("fedwcm_fl_round_seconds", "Wall-clock duration of one federated round.", nil)
	m.ClientSeconds = reg.Histogram("fedwcm_fl_client_step_seconds", "Wall-clock duration of one client's local training.", nil)
	m.ClientsTrained = reg.Counter("fedwcm_fl_client_steps_total", "Client local-training executions.")
	m.Dropped = reg.Counter("fedwcm_fl_clients_dropped_total", "Sampled clients that dropped before training.")
	m.Stragglers = reg.Counter("fedwcm_fl_stragglers_total", "Sampled clients trained with a partial work fraction.")
	m.TestAcc = reg.Gauge("fedwcm_fl_test_acc", "Latest evaluated global test accuracy.")
	m.TrainLoss = reg.Gauge("fedwcm_fl_train_loss", "Latest mean local training loss.")
	shot := reg.GaugeVec("fedwcm_fl_shot_acc", "Latest test accuracy by shot bucket.", "bucket")
	m.ShotHead = shot.With("head")
	m.ShotMedium = shot.With("medium")
	m.ShotTail = shot.With("tail")
	m.AsyncAggs = reg.Counter("fedwcm_fl_async_aggregations_total", "Buffered-async aggregation events (server version bumps with a non-empty buffer).")
	m.AsyncPartial = reg.Counter("fedwcm_fl_async_partial_flushes_total", "Async liveness flushes below the K threshold.")
	m.AsyncEvents = reg.Counter("fedwcm_fl_async_events_total", "Client-completion events popped from the virtual-time queue.")
	m.AsyncWaves = reg.Counter("fedwcm_fl_async_waves_total", "Cohort sampling waves drawn by the async engine.")
	m.AsyncBufferFill = reg.Gauge("fedwcm_fl_async_buffer_fill", "Updates currently buffered toward the next async aggregation.")
	m.AsyncClock = reg.Gauge("fedwcm_fl_async_virtual_time", "Virtual wall-clock of the async run (1 unit = one non-straggler local round).")
	m.AsyncStaleness = reg.Histogram("fedwcm_fl_async_staleness", "Staleness (server versions behind) of aggregated async updates.", []float64{0, 1, 2, 4, 8, 16, 32})
	m.diagVec = reg.GaugeVec("fedwcm_fl_diag", "Method-reported per-round diagnostics (momentum norms, FedWCM alpha/q/wmax).", "metric")
	return m
}

var (
	defaultRunMetrics     *RunMetrics
	defaultRunMetricsOnce sync.Once
)

// DefaultRunMetrics returns the process-wide bundle over obs.Default().
// The engine falls back to it when Env.Metrics is unset, so instrumentation
// is on by default everywhere (including benchmarks — the hot path is
// allocation-free by design, and BenchmarkRoundHotPath holds that floor).
func DefaultRunMetrics() *RunMetrics {
	defaultRunMetricsOnce.Do(func() { defaultRunMetrics = NewRunMetrics(obs.Default()) })
	return defaultRunMetrics
}

// ReportDiag publishes a MetricsReporter snapshot to the diag gauges.
func (m *RunMetrics) ReportDiag(vals map[string]float64) {
	if m == nil || m.diagVec == nil || len(vals) == 0 {
		return
	}
	for k, v := range vals {
		m.diagMu.RLock()
		g, ok := m.diag[k]
		m.diagMu.RUnlock()
		if !ok {
			g = m.diagVec.With(k)
			m.diagMu.Lock()
			m.diag[k] = g
			m.diagMu.Unlock()
		}
		g.Set(v)
	}
}
