package nn

import (
	"sync"

	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

// Conv2D is a 2-D convolution over channel-outer flattened images.
// Weights are stored as (outC × inC·kh·kw) so each sample's forward pass is
// one matmul against its im2col matrix.
type Conv2D struct {
	InC, H, W    int // input geometry
	OutC, KH, KW int
	Stride, Pad  int
	OutH, OutW   int
	Wt, B        *Param

	x *tensor.Dense // cached input

	// colsPool recycles per-chunk im2col scratch. The layer used to cache
	// one cols matrix per sample (≈ k·p floats each) so Backward could
	// reuse them; that working set dwarfed L2 for real geometries, so the
	// fused path instead keeps one scratch per goroutine chunk and
	// recomputes im2col in Backward — the recompute is cheap next to the
	// matmuls it feeds and the results are identical by construction.
	colsPool sync.Pool

	wview    *tensor.Dense // Wt.Data viewed as OutC×(InC·KH·KW)
	fwd, bwd workspace
}

// getCols returns a pooled k×p im2col scratch (contents undefined).
func (l *Conv2D) getCols(k, p int) *tensor.Dense {
	if v := l.colsPool.Get(); v != nil {
		if c := v.(*tensor.Dense); c.R == k && c.C == p {
			return c
		}
	}
	return tensor.NewDense(k, p)
}

// NewConv2D creates a convolution layer with He initialisation.
func NewConv2D(r *xrand.RNG, inC, h, w, outC, k, stride, pad int) *Conv2D {
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: Conv2D output would be empty")
	}
	l := &Conv2D{
		InC: inC, H: h, W: w,
		OutC: outC, KH: k, KW: k,
		Stride: stride, Pad: pad,
		OutH: outH, OutW: outW,
		Wt: NewParam("conv.W", outC*inC*k*k),
		B:  NewParam("conv.B", outC),
	}
	heInit(r, l.Wt.Data, inC*k*k)
	l.wview = tensor.FromSlice(outC, inC*k*k, l.Wt.Data)
	return l
}

// OutDim returns the flattened output width (outC·outH·outW).
func (l *Conv2D) OutDim() int { return l.OutC * l.OutH * l.OutW }

// im2col fills cols (K × P) from one sample's flattened image.
func (l *Conv2D) im2col(img []float64, cols *tensor.Dense) {
	p := l.OutW * l.OutH
	for c := 0; c < l.InC; c++ {
		chanBase := c * l.H * l.W
		for ky := 0; ky < l.KH; ky++ {
			for kx := 0; kx < l.KW; kx++ {
				rowIdx := (c*l.KH+ky)*l.KW + kx
				row := cols.Data[rowIdx*p : (rowIdx+1)*p]
				pi := 0
				for oy := 0; oy < l.OutH; oy++ {
					iy := oy*l.Stride + ky - l.Pad
					if iy < 0 || iy >= l.H {
						for ox := 0; ox < l.OutW; ox++ {
							row[pi] = 0
							pi++
						}
						continue
					}
					rowBase := chanBase + iy*l.W
					for ox := 0; ox < l.OutW; ox++ {
						ix := ox*l.Stride + kx - l.Pad
						if ix < 0 || ix >= l.W {
							row[pi] = 0
						} else {
							row[pi] = img[rowBase+ix]
						}
						pi++
					}
				}
			}
		}
	}
}

// col2im scatter-adds a (K × P) gradient matrix back into one sample's
// flattened image gradient.
func (l *Conv2D) col2im(cols *tensor.Dense, dimg []float64) {
	p := l.OutW * l.OutH
	for c := 0; c < l.InC; c++ {
		chanBase := c * l.H * l.W
		for ky := 0; ky < l.KH; ky++ {
			for kx := 0; kx < l.KW; kx++ {
				rowIdx := (c*l.KH+ky)*l.KW + kx
				row := cols.Data[rowIdx*p : (rowIdx+1)*p]
				pi := 0
				for oy := 0; oy < l.OutH; oy++ {
					iy := oy*l.Stride + ky - l.Pad
					if iy < 0 || iy >= l.H {
						pi += l.OutW
						continue
					}
					rowBase := chanBase + iy*l.W
					for ox := 0; ox < l.OutW; ox++ {
						ix := ox*l.Stride + kx - l.Pad
						if ix >= 0 && ix < l.W {
							dimg[rowBase+ix] += row[pi]
						}
						pi++
					}
				}
			}
		}
	}
}

// Forward convolves each sample (parallel across the batch).
func (l *Conv2D) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if x.C != l.InC*l.H*l.W {
		panic("nn: Conv2D input width mismatch")
	}
	l.x = x
	n := x.R
	k := l.InC * l.KH * l.KW
	p := l.OutH * l.OutW
	out := l.fwd.get(n, l.OutDim())
	wt := l.wview
	tensor.ParallelFor(n, 1, func(lo, hi int) {
		cols := l.getCols(k, p)
		for s := lo; s < hi; s++ {
			l.im2col(x.Row(s), cols)
			oseg := tensor.FromSlice(l.OutC, p, out.Row(s))
			tensor.MatMulInto(oseg, wt, cols)
			for oc := 0; oc < l.OutC; oc++ {
				b := l.B.Data[oc]
				row := oseg.Row(oc)
				for i := range row {
					row[i] += b
				}
			}
		}
		l.colsPool.Put(cols)
	})
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
// Samples are processed in parallel with per-chunk weight-gradient partials
// merged under a mutex, so results are independent of scheduling.
func (l *Conv2D) Backward(dout *tensor.Dense) *tensor.Dense {
	if l.x == nil {
		panic("nn: Conv2D Backward before Forward")
	}
	n := l.x.R
	k := l.InC * l.KH * l.KW
	p := l.OutH * l.OutW
	dx := l.bwd.getZeroed(n, l.x.C) // col2im scatter-adds: must start clean
	wt := l.wview
	var mu sync.Mutex
	tensor.ParallelFor(n, 1, func(lo, hi int) {
		// Per-chunk scratch, reused across the chunk's samples: the partials
		// must stay goroutine-private, but need not be per-sample. The
		// im2col matrix is recomputed from the cached input rather than
		// held per sample since Forward (see colsPool).
		dwPart := make([]float64, len(l.Wt.Data))
		dbPart := make([]float64, len(l.B.Data))
		dwMat := tensor.FromSlice(l.OutC, k, dwPart)
		dw := tensor.NewDense(l.OutC, k)
		dcols := tensor.NewDense(k, p)
		cols := l.getCols(k, p)
		for s := lo; s < hi; s++ {
			dseg := tensor.FromSlice(l.OutC, p, dout.Row(s))
			l.im2col(l.x.Row(s), cols)
			// dW += dOut·colsᵀ
			tensor.MatMulBTInto(dw, dseg, cols)
			tensor.AddVec(dwMat.Data, dw.Data)
			for oc := 0; oc < l.OutC; oc++ {
				dbPart[oc] += tensor.Sum(dseg.Row(oc))
			}
			// dcols = Wᵀ·dOut, scattered back to image space
			tensor.MatMulATInto(dcols, wt, dseg)
			l.col2im(dcols, dx.Row(s))
		}
		l.colsPool.Put(cols)
		mu.Lock()
		tensor.AddVec(l.Wt.Grad, dwPart)
		tensor.AddVec(l.B.Grad, dbPart)
		mu.Unlock()
	})
	return dx
}

// Params returns [W, B].
func (l *Conv2D) Params() []*Param { return []*Param{l.Wt, l.B} }
