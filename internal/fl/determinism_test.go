package fl

import (
	"reflect"
	"testing"
)

// TestRunFullHistoryDeterministicWorkers14 is the regression test for the
// contract Run documents ("deterministic regardless of scheduling") that the
// content-addressed store depends on: Workers is excluded from the spec
// fingerprint, so a history computed with 4 workers must be byte-for-byte
// the history computed with 1. Unlike the accuracy-only check above, this
// compares entire RoundStats — per-class accuracies, train loss and method
// metrics included.
func TestRunFullHistoryDeterministicWorkers14(t *testing.T) {
	mk := func(workers int) *History {
		cfg := Config{Rounds: 8, SampleClients: 5, LocalEpochs: 2, BatchSize: 16,
			EtaL: 0.1, EtaG: 1, Seed: 91, EvalEvery: 2, Workers: workers, DropProb: 0.2}
		env := testEnv(91, cfg, 4, 12, 0.3, 0.3)
		return Run(env, &sgdMethod{})
	}
	one, four := mk(1), mk(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("Workers=1 and Workers=4 histories differ:\n w1: %+v\n w4: %+v", one, four)
	}
}

// TestRunWithProgressMatchesRun: the progress hook observes exactly the
// recorded stats, in order, and does not perturb the run.
func TestRunWithProgressMatchesRun(t *testing.T) {
	mk := func(onRound func(RoundStat)) *History {
		cfg := Config{Rounds: 6, SampleClients: 3, LocalEpochs: 1, BatchSize: 20, Seed: 93, EvalEvery: 2}
		env := testEnv(93, cfg, 3, 6, 0.5, 0.5)
		return RunWithProgress(env, &sgdMethod{}, onRound)
	}
	var seen []RoundStat
	withHook := mk(func(s RoundStat) { seen = append(seen, s) })
	plain := mk(nil)
	if !reflect.DeepEqual(withHook, plain) {
		t.Fatal("progress hook changed the run result")
	}
	if !reflect.DeepEqual(seen, withHook.Stats) {
		t.Fatalf("hook saw %+v, history has %+v", seen, withHook.Stats)
	}
}
