package store

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// keyedHistory mints a history whose contents encode its key, so a
// concurrent reader can verify it got the record it asked for and not a
// torn or cross-wired one.
func keyedHistory(key int) (fp string, acc float64) {
	return fpFor(fmt.Sprintf("concurrent-%d", key)), 0.25 + float64(key)/1000
}

// TestConcurrentGetPutWithEviction hammers one store from many goroutines
// with a key space far larger than the in-memory LRU, so Gets constantly
// fall through to disk, promote entries and evict others while Puts
// (including same-key re-Puts) race them. Run under `go test -race` in CI;
// the assertions catch lost and corrupted records, the race detector
// catches unsynchronised access.
func TestConcurrentGetPutWithEviction(t *testing.T) {
	s, err := Open(t.TempDir(), 4) // tiny LRU: eviction on nearly every op
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 16
		keys    = 24
		rounds  = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				key := (w*7 + i) % keys
				fp, acc := keyedHistory(key)
				if w%2 == 0 || i%5 == 0 {
					h := testHistory(0)
					h.Stats[0].TestAcc = acc
					if err := s.Put(fp, h); err != nil {
						errs <- fmt.Errorf("put %d: %w", key, err)
						return
					}
				}
				h, ok, err := s.Get(fp)
				if err != nil {
					errs <- fmt.Errorf("get %d: %w", key, err)
					return
				}
				if !ok {
					continue // not written yet; a miss is not a corruption
				}
				if len(h.Stats) != 2 || math.Abs(h.Stats[0].TestAcc-acc) > 1e-12 {
					errs <- fmt.Errorf("get %d: wrong or torn record: %+v", key, h.Stats)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every key that was ever Put must now be present and intact, both via
	// the cache and on disk (Keys walks the directory).
	for key := 0; key < keys; key++ {
		fp, acc := keyedHistory(key)
		h, ok, err := s.Get(fp)
		if err != nil || !ok {
			t.Fatalf("key %d lost after the hammer: ok=%v err=%v", key, ok, err)
		}
		if math.Abs(h.Stats[0].TestAcc-acc) > 1e-12 {
			t.Fatalf("key %d corrupted: %+v", key, h.Stats[0])
		}
	}
	disk, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(disk) != keys {
		t.Fatalf("disk holds %d artifacts, want %d", len(disk), keys)
	}
	st := s.Stats()
	if st.Puts == 0 || st.MemHits == 0 || st.DiskHits == 0 {
		t.Fatalf("hammer did not exercise all paths: %+v", st)
	}
}
