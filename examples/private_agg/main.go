// Private distribution gathering (Appendix C): FedWCM needs the global
// class distribution, but clients should not reveal their local counts to
// the server. This example runs the BatchCrypt-style Paillier protocol —
// key-holder keygen, encrypted uploads, homomorphic aggregation, key-holder
// decryption — verifies the result against the plaintext truth, and then
// feeds the recovered distribution into FedWCM's scoring.
//
//	go run ./examples/private_agg
package main

import (
	"fmt"
	"log"

	"fedwcm/internal/data"
	"fedwcm/internal/fl/methods"
	"fedwcm/internal/he"
	"fedwcm/internal/partition"
	"fedwcm/internal/xrand"
)

func main() {
	// A small federation over a long-tailed 10-class dataset.
	spec := data.GaussianSpec{Classes: 10, Dim: 16, Sep: 3, Noise: 1}
	train := spec.Generate(3, 1, data.LongTailCounts(600, 10, 0.1))
	part := partition.EqualQuantity(xrand.New(4), train, 25, 0.1)

	// Each client's private input: its local class counts.
	counts := make([][]int, part.NumClients())
	copy(counts, part.Counts)

	proto := he.DefaultProtocol()
	global, report, err := proto.Run(counts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol:", report)

	// Verify against the plaintext truth (the server never sees this).
	truth := train.ClassCounts()
	for c := range truth {
		if truth[c] != global[c] {
			log.Fatalf("class %d: protocol recovered %d, truth %d", c, global[c], truth[c])
		}
	}
	fmt.Println("recovered global counts match plaintext truth:", global)

	// The recovered distribution drives FedWCM's client scoring exactly as
	// the plaintext one would.
	total := 0
	for _, n := range global {
		total += n
	}
	props := make([]float64, len(global))
	for c, n := range global {
		props[c] = float64(n) / float64(total)
	}
	rel := methods.ClassRelevance(methods.ScoreScarcity, props, data.UniformTarget(len(global)))
	fmt.Println("\nclient scores from the privately recovered distribution:")
	for k := 0; k < 5; k++ {
		s := methods.ClientScore(rel, part.Counts[k])
		fmt.Printf("  client %d: score %.4f (counts %v)\n", k, s, part.Counts[k])
	}
	fmt.Println("  ... (higher score = holds globally scarcer classes)")
}
