// AVX micro-kernels for the float64 hot paths. Every kernel preserves the
// per-element operation order of its pure-Go counterpart (see gemm.go):
// multiplies and adds are emitted as separate VMULPD/VADDPD so no FMA
// contraction changes rounding, and each output element accumulates in the
// same sequence as the scalar loops — only independent elements are
// processed in parallel. Results are therefore bit-identical to the Go
// fallbacks on every input.

#include "textflag.h"

// func gemmKernel4x8AVX(dst, a, b *float64, ldc, lda, astep, ldb, k int64)
//
// dst[4][8] += A[4][k]·B[k][8], strides in elements. A rows are spaced lda
// elements apart and advance astep elements per k step, so a transposed
// operand streams without packing (lda=1, astep = its row stride).
// Accumulators for the 4×8 tile live in Y0-Y7; per k step we load one B row
// (Y8, Y9), broadcast each A element and multiply-accumulate. Per-element
// accumulation order is ascending k, identical to the scalar kernels.
TEXT ·gemmKernel4x8AVX(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ ldc+24(FP), CX
	MOVQ lda+32(FP), R8
	MOVQ astep+40(FP), R14
	MOVQ ldb+48(FP), R9
	MOVQ k+56(FP), R10
	SHLQ $3, CX // strides: elements → bytes
	SHLQ $3, R8
	SHLQ $3, R14
	SHLQ $3, R9

	// A row pointers: SI, R11, R12, R13.
	LEAQ (SI)(R8*1), R11
	LEAQ (SI)(R8*2), R12
	LEAQ (R11)(R8*2), R13

	// Load the 4×8 C tile into Y0-Y7.
	MOVQ    DI, AX
	VMOVUPD (AX), Y0
	VMOVUPD 32(AX), Y1
	ADDQ    CX, AX
	VMOVUPD (AX), Y2
	VMOVUPD 32(AX), Y3
	ADDQ    CX, AX
	VMOVUPD (AX), Y4
	VMOVUPD 32(AX), Y5
	ADDQ    CX, AX
	VMOVUPD (AX), Y6
	VMOVUPD 32(AX), Y7

gemmloop:
	VMOVUPD (DX), Y8
	VMOVUPD 32(DX), Y9

	VBROADCASTSD (SI), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1

	VBROADCASTSD (R11), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3

	VBROADCASTSD (R12), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5

	VBROADCASTSD (R13), Y10
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7

	ADDQ R14, SI
	ADDQ R14, R11
	ADDQ R14, R12
	ADDQ R14, R13
	ADDQ R9, DX
	DECQ R10
	JNZ  gemmloop

	// Store the tile back.
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    CX, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    CX, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    CX, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func axpyBlocksAVX(dst, x *float64, alpha float64, blocks int64)
// dst[i] += alpha*x[i] over blocks×4 elements.
TEXT ·axpyBlocksAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y0
	MOVQ         blocks+24(FP), CX

axpyloop:
	VMOVUPD (SI), Y1
	VMULPD  Y1, Y0, Y2
	VMOVUPD (DI), Y3
	VADDPD  Y2, Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axpyloop
	VZEROUPPER
	RET

// func addVecBlocksAVX(dst, x *float64, blocks int64)
// dst[i] += x[i] over blocks×4 elements.
TEXT ·addVecBlocksAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ blocks+16(FP), CX

addloop:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     addloop
	VZEROUPPER
	RET

// func reluFwdBlocksAVX(dst, x *float64, blocks int64)
// dst[i] = x[i] unless x[i] <= 0 (ordered compare), in which case +0.
// Matches the scalar branch exactly, including NaN (NaN <= 0 is false, so
// NaN passes through) and -0 (clamped to +0 by the ANDN mask).
TEXT ·reluFwdBlocksAVX(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   x+8(FP), SI
	MOVQ   blocks+16(FP), CX
	VXORPD Y0, Y0, Y0 // zeros

relufwdloop:
	VMOVUPD (SI), Y1
	VCMPPD  $2, Y0, Y1, Y2  // mask = x <= 0 (LE_OS: NaN → false)
	VANDNPD Y1, Y2, Y3      // dst = ^mask & x
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     relufwdloop
	VZEROUPPER
	RET

// func reluBwdBlocksAVX(dst, dout, x *float64, blocks int64)
// dst[i] = dout[i] where x[i] > 0 (i.e. not x <= 0), else +0 — the same
// mask semantics as the forward pass.
TEXT ·reluBwdBlocksAVX(SB), NOSPLIT, $0-32
	MOVQ   dst+0(FP), DI
	MOVQ   dout+8(FP), SI
	MOVQ   x+16(FP), DX
	MOVQ   blocks+24(FP), CX
	VXORPD Y0, Y0, Y0

relubwdloop:
	VMOVUPD (DX), Y1
	VCMPPD  $2, Y0, Y1, Y2 // mask = x <= 0
	VMOVUPD (SI), Y3
	VANDNPD Y3, Y2, Y4     // dst = ^mask & dout
	VMOVUPD Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     relubwdloop
	VZEROUPPER
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL  eaxIn+0(FP), AX
	MOVL  ecxIn+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL   CX, CX
	XGETBV
	MOVL   AX, eax+0(FP)
	MOVL   DX, edx+4(FP)
	RET

// func subVecBlocksAVX(dst, x *float64, blocks int64)
// dst[i] -= x[i] over blocks×4 elements.
TEXT ·subVecBlocksAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ blocks+16(FP), CX

subloop:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VSUBPD  Y1, Y2, Y2 // dst - x
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     subloop
	VZEROUPPER
	RET

// func scaleBlocksAVX(dst *float64, alpha float64, blocks int64)
// dst[i] *= alpha over blocks×4 elements.
TEXT ·scaleBlocksAVX(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	VBROADCASTSD alpha+8(FP), Y0
	MOVQ         blocks+16(FP), CX

scaleloop:
	VMOVUPD (DI), Y1
	VMULPD  Y0, Y1, Y1 // dst * alpha
	VMOVUPD Y1, (DI)
	ADDQ    $32, DI
	DECQ    CX
	JNZ     scaleloop
	VZEROUPPER
	RET

// func bnNormBlocksAVX(out, xmu, x, mean, gam, bet, inv *float64, blocks int64)
// Per element: d = x - mean; xmu = d; out = ((g*d)*inv) + b — the exact
// expression order of the scalar BatchNorm forward.
TEXT ·bnNormBlocksAVX(SB), NOSPLIT, $0-64
	MOVQ out+0(FP), DI
	MOVQ xmu+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ mean+24(FP), R8
	MOVQ gam+32(FP), R9
	MOVQ bet+40(FP), R10
	MOVQ inv+48(FP), R11
	MOVQ blocks+56(FP), CX

bnnormloop:
	VMOVUPD (DX), Y1
	VMOVUPD (R8), Y2
	VSUBPD  Y2, Y1, Y3 // d = x - mean
	VMOVUPD Y3, (SI)
	VMOVUPD (R9), Y4
	VMULPD  Y3, Y4, Y5 // g*d
	VMOVUPD (R11), Y6
	VMULPD  Y6, Y5, Y5 // (g*d)*inv
	VMOVUPD (R10), Y7
	VADDPD  Y7, Y5, Y5 // + b
	VMOVUPD Y5, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	DECQ    CX
	JNZ     bnnormloop
	VZEROUPPER
	RET

// func bnVarAccumBlocksAVX(sq, x, mean *float64, blocks int64)
// Per element: d = x - mean; sq += d*d.
TEXT ·bnVarAccumBlocksAVX(SB), NOSPLIT, $0-32
	MOVQ sq+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mean+16(FP), DX
	MOVQ blocks+24(FP), CX

bnvarloop:
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VSUBPD  Y2, Y1, Y3 // d = x - mean
	VMULPD  Y3, Y3, Y4 // d*d
	VMOVUPD (DI), Y5
	VADDPD  Y4, Y5, Y5
	VMOVUPD Y5, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     bnvarloop
	VZEROUPPER
	RET

// func bnBwdAccumBlocksAVX(sumD, sumDXmu, dout, xmu *float64, blocks int64)
// Per element: sumD += dout; sumDXmu += dout*xmu.
TEXT ·bnBwdAccumBlocksAVX(SB), NOSPLIT, $0-40
	MOVQ sumD+0(FP), DI
	MOVQ sumDXmu+8(FP), SI
	MOVQ dout+16(FP), DX
	MOVQ xmu+24(FP), R8
	MOVQ blocks+32(FP), CX

bnaccloop:
	VMOVUPD (DX), Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2 // sumD += d
	VMOVUPD Y2, (DI)
	VMOVUPD (R8), Y3
	VMULPD  Y3, Y1, Y4 // d*xmu
	VMOVUPD (SI), Y5
	VADDPD  Y4, Y5, Y5
	VMOVUPD Y5, (SI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, R8
	DECQ    CX
	JNZ     bnaccloop
	VZEROUPPER
	RET

// func bnBwdDxBlocksAVX(dx, dout, xmu, k1, k2, k3 *float64, blocks int64)
// Per element: dx = ((k1*dout) - k2) - (k3*xmu) — the scalar expression
// order of the BatchNorm backward.
TEXT ·bnBwdDxBlocksAVX(SB), NOSPLIT, $0-56
	MOVQ dx+0(FP), DI
	MOVQ dout+8(FP), SI
	MOVQ xmu+16(FP), DX
	MOVQ k1+24(FP), R8
	MOVQ k2+32(FP), R9
	MOVQ k3+40(FP), R10
	MOVQ blocks+48(FP), CX

bndxloop:
	VMOVUPD (SI), Y1
	VMOVUPD (R8), Y2
	VMULPD  Y1, Y2, Y3 // k1*dout
	VMOVUPD (R9), Y4
	VSUBPD  Y4, Y3, Y3 // - k2
	VMOVUPD (DX), Y5
	VMOVUPD (R10), Y6
	VMULPD  Y5, Y6, Y7 // k3*xmu
	VSUBPD  Y7, Y3, Y3 // - k3*xmu
	VMOVUPD Y3, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	DECQ    CX
	JNZ     bndxloop
	VZEROUPPER
	RET
