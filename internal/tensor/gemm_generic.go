//go:build !amd64

package tensor

// hasAVX is always false off amd64; the pure-Go register-tiled kernels run
// instead and produce bit-identical results (see gemm.go).
const hasAVX = false

func gemmKernel(dst []float64, ldc int, a []float64, lda, astep int, b []float64, ldb int, k int) {
	gemmKernelGo(dst, ldc, a, lda, astep, b, ldb, k)
}

func axpyBlocksAVX(dst, x *float64, alpha float64, blocks int64) { panic("tensor: no AVX") }

func addVecBlocksAVX(dst, x *float64, blocks int64) { panic("tensor: no AVX") }

func reluFwdBlocksAVX(dst, x *float64, blocks int64) { panic("tensor: no AVX") }

func reluBwdBlocksAVX(dst, dout, x *float64, blocks int64) { panic("tensor: no AVX") }

func subVecBlocksAVX(dst, x *float64, blocks int64) { panic("tensor: no AVX") }

func scaleBlocksAVX(dst *float64, alpha float64, blocks int64) { panic("tensor: no AVX") }

func bnNormBlocksAVX(out, xmu, x, mean, g, b, inv *float64, blocks int64) { panic("tensor: no AVX") }

func bnVarAccumBlocksAVX(sq, x, mean *float64, blocks int64) { panic("tensor: no AVX") }

func bnBwdAccumBlocksAVX(sumD, sumDXmu, dout, xmu *float64, blocks int64) { panic("tensor: no AVX") }

func bnBwdDxBlocksAVX(dx, dout, xmu, k1, k2, k3 *float64, blocks int64) { panic("tensor: no AVX") }
