// Momentum collapse demo (the paper's §4 motivation, Figure 4 in
// miniature): train FedCM on a balanced and on a long-tailed split of the
// same data, recording test accuracy, mean neuron concentration, and the
// tail-class feature geometry. Under the long tail, FedCM's concentration
// spikes while its accuracy slides — the "minority collapse" signature —
// and FedWCM on the same data stays flat.
//
//	go run ./examples/momentum_collapse
package main

import (
	"fmt"
	"log"

	"fedwcm/internal/collapse"
	"fedwcm/internal/experiments"
	"fedwcm/internal/fl"
)

func run(method string, imf float64) (*fl.History, *collapse.Series) {
	var series *collapse.Series
	spec := experiments.RunSpec{
		Dataset: "cifar10-syn",
		Method:  method,
		Beta:    0.1,
		IF:      imf,
		Clients: 50,
		Scale:   2,
		Cfg: fl.Config{
			Rounds: 50, SampleClients: 10, LocalEpochs: 5, BatchSize: 50,
			EtaL: 0.1, EtaG: 1, Seed: 11, EvalEvery: 5,
		},
		Mod: func(env *fl.Env) {
			probe, s := collapse.NewProbe(collapse.ProbeBatch(env.Test, 200))
			env.Probes = append(env.Probes, probe)
			series = s
		},
	}
	hist, err := spec.Run()
	if err != nil {
		log.Fatal(err)
	}
	return hist, series
}

func main() {
	type setting struct {
		method string
		imf    float64
	}
	settings := []setting{
		{"fedcm", 1},     // balanced: momentum is safe
		{"fedcm", 0.05},  // long tail: momentum destabilises
		{"fedwcm", 0.05}, // the fix
	}
	for _, st := range settings {
		hist, series := run(st.method, st.imf)
		fmt.Printf("%s IF=%g\n", st.method, st.imf)
		fmt.Printf("  %-8s %-10s %s\n", "round", "test acc", "neuron concentration")
		for i, s := range hist.Stats {
			fmt.Printf("  %-8d %-10.3f %.3f\n", s.Round, s.TestAcc, series.Mean[i])
		}
		fmt.Println()
	}
	fmt.Println("Reading the numbers: balanced FedCM keeps low, stable concentration;")
	fmt.Println("long-tailed FedCM shows rising/spiky concentration with sliding accuracy;")
	fmt.Println("FedWCM holds both steady on the identical long-tailed data.")
}
