package collapse

import (
	"math"
	"testing"

	"fedwcm/internal/data"
	"fedwcm/internal/fl"
	"fedwcm/internal/loss"
	"fedwcm/internal/nn"
	"fedwcm/internal/partition"
	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

func TestUnitConcentrationBounds(t *testing.T) {
	// uniform activation mass → 1
	uniform := tensor.NewDense(4, 8)
	tensor.Fill(uniform.Data, 0.5)
	if got := unitConcentration(uniform); math.Abs(got-1) > 1e-9 {
		t.Fatalf("uniform concentration %v, want 1", got)
	}
	// single dominant unit → D
	spike := tensor.NewDense(4, 8)
	for s := 0; s < 4; s++ {
		spike.Set(s, 3, 5)
	}
	if got := unitConcentration(spike); math.Abs(got-8) > 1e-9 {
		t.Fatalf("spike concentration %v, want 8", got)
	}
	// dead layer treated as fully collapsed
	dead := tensor.NewDense(2, 8)
	if got := unitConcentration(dead); got != 8 {
		t.Fatalf("dead layer concentration %v, want 8", got)
	}
}

func TestUnitConcentrationOrdering(t *testing.T) {
	r := xrand.New(1)
	flat := tensor.NewDense(16, 32)
	r.FillNorm(flat.Data, 0, 1)
	skewed := flat.Clone()
	// amplify a few columns
	for s := 0; s < skewed.R; s++ {
		row := skewed.Row(s)
		for j := 0; j < 3; j++ {
			row[j] *= 40
		}
	}
	if unitConcentration(skewed) <= unitConcentration(flat) {
		t.Fatal("amplifying a few units must raise concentration")
	}
}

func TestConcentrationMeasuresActivationLayers(t *testing.T) {
	net := nn.NewMLP(3, 6, []int{10, 8}, 4, false)
	x := tensor.NewDense(5, 6)
	xrand.New(4).FillNorm(x.Data, 0, 1)
	rep := Concentration(net, x)
	if len(rep.PerLayer) != 2 { // two ReLU layers
		t.Fatalf("expected 2 measured layers, got %d", len(rep.PerLayer))
	}
	if rep.Mean <= 0 {
		t.Fatal("mean concentration should be positive")
	}
	for _, v := range rep.PerLayer {
		if v < 1-1e-9 {
			t.Fatalf("concentration below lower bound: %v", v)
		}
	}
}

func TestConcentrationLinearModelFallback(t *testing.T) {
	net := nn.NewSoftmaxRegression(5, 6, 3)
	x := tensor.NewDense(4, 6)
	xrand.New(5).FillNorm(x.Data, 0, 1)
	rep := Concentration(net, x)
	if len(rep.PerLayer) != 1 {
		t.Fatalf("linear model should measure its single layer, got %d", len(rep.PerLayer))
	}
}

func TestClassFeaturesDetectsMergedTail(t *testing.T) {
	// Train a small MLP on 4-class data, then compare tail cosine stats
	// between a healthy model and one whose tail-class structure never got
	// learned (random init barely separates classes).
	spec := data.GaussianSpec{Classes: 4, Dim: 12, Sep: 4, Noise: 0.5}
	train := spec.Generate(7, 1, data.UniformCounts(60, 4))
	net := nn.NewMLP(8, 12, []int{16}, 4, false)
	untrained := ClassFeatures(net, train, 200)
	ce := loss.CrossEntropy{}
	for i := 0; i < 150; i++ {
		net.ZeroGrad()
		logits := net.Forward(train.X, true)
		_, dl := ce.LossAndGrad(logits, train.Y)
		net.Backward(dl)
		net.Step(0.2)
	}
	trained := ClassFeatures(net, train, 200)
	if trained.MeanCosineAll >= untrained.MeanCosineAll {
		t.Fatalf("training should separate class features: %v vs %v",
			trained.MeanCosineAll, untrained.MeanCosineAll)
	}
	if trained.DeadTailRate > 0.5 {
		t.Fatalf("healthy training should not kill tail features: %v", trained.DeadTailRate)
	}
}

func TestProbeRecordsSeries(t *testing.T) {
	spec := data.GaussianSpec{Classes: 3, Dim: 8, Sep: 3, Noise: 0.8}
	train := spec.Generate(9, 1, data.UniformCounts(40, 3))
	test := spec.Generate(9, 2, data.UniformCounts(20, 3))
	part := partition.EqualQuantity(xrand.New(10), train, 4, 1)
	cfg := fl.Config{Rounds: 6, SampleClients: 2, LocalEpochs: 1, BatchSize: 20, Seed: 11, EvalEvery: 2}
	env := fl.NewEnv(cfg, train, test, part, nn.MLPBuilder(8, []int{12}, 3, false), nil)
	probe, series := NewProbe(ProbeBatch(test, 30))
	env.Probes = append(env.Probes, probe)
	method := struct{ simpleFedAvg }{}
	fl.Run(env, &method.simpleFedAvg)
	if len(series.Rounds) != 3 {
		t.Fatalf("expected 3 probe points, got %d", len(series.Rounds))
	}
	for i, m := range series.Mean {
		if m < 1-1e-9 {
			t.Fatalf("probe %d concentration %v below bound", i, m)
		}
		if len(series.PerLayer[i]) == 0 {
			t.Fatal("per-layer series empty")
		}
	}
}

// simpleFedAvg is a minimal method for probe tests.
type simpleFedAvg struct {
	env *fl.Env
}

func (m *simpleFedAvg) Name() string            { return "probe-fedavg" }
func (m *simpleFedAvg) Init(env *fl.Env, _ int) { m.env = env }
func (m *simpleFedAvg) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	return fl.RunLocalSGD(ctx, fl.LocalOpts{})
}
func (m *simpleFedAvg) Aggregate(_ int, global []float64, results []*fl.ClientResult) {
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, fl.SizeWeights(results))
}

func TestProbeBatchBounds(t *testing.T) {
	spec := data.GaussianSpec{Classes: 2, Dim: 4, Sep: 2, Noise: 1}
	ds := spec.Generate(12, 1, []int{5, 5})
	if ProbeBatch(ds, 100).R != 10 {
		t.Fatal("probe batch should clamp to dataset size")
	}
	if ProbeBatch(ds, 3).R != 3 {
		t.Fatal("probe batch should respect n")
	}
}
