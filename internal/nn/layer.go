package nn

import "fedwcm/internal/tensor"

// Layer is a differentiable module. Forward caches whatever Backward needs;
// Backward must be called at most once per Forward, with dout holding
// d(loss)/d(output).
type Layer interface {
	// Forward computes the layer output for input x. When train is false
	// the layer runs in inference mode (BatchNorm uses running statistics,
	// Dropout is a no-op).
	Forward(x *tensor.Dense, train bool) *tensor.Dense
	// Backward consumes d(loss)/d(output) and returns d(loss)/d(input),
	// accumulating parameter gradients along the way.
	Backward(dout *tensor.Dense) *tensor.Dense
	// Params returns the layer's parameters (possibly empty). The returned
	// slice and order must be stable across calls.
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{Layers: layers}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(dout *tensor.Dense) *tensor.Dense {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// ForwardCollect runs the forward pass and returns every layer's output in
// order (outputs[i] is the output of Layers[i]). It powers the layer-wise
// activation analyses (neuron concentration, minority collapse).
func (s *Sequential) ForwardCollect(x *tensor.Dense, train bool) []*tensor.Dense {
	outs := make([]*tensor.Dense, len(s.Layers))
	for i, l := range s.Layers {
		x = l.Forward(x, train)
		outs[i] = x
	}
	return outs
}

// Params concatenates the parameters of all layers in order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
