// Package scenario declares seed-deterministic round-time dynamics layered
// onto an otherwise static federated environment: clients that come and go
// (availability churn and correlated outages), clients that finish only part
// of their local work (stragglers), and label distributions that drift
// between two long-tail profiles over the course of a run.
//
// A Scenario is pure data — it travels inside fl.Config's JSON form, so it
// is part of a run's content address (see sweep.RunSpec.Fingerprint) — and
// a Sim is its deterministic evaluator: every decision is derived from
// (seed, round, client) alone, never from scheduling, so scenario-bearing
// runs stay bit-reproducible across worker counts exactly like static ones.
package scenario

import (
	"fmt"
	"math"

	"fedwcm/internal/xrand"
)

// Scenario bundles the three dynamic models. The zero value (and nil) means
// a static environment; empty sub-blocks canonicalise away (see Normalized)
// so a spec spelling `"scenario": {}` fingerprints identically to one that
// omits the field.
type Scenario struct {
	Availability *Availability `json:"availability,omitempty"`
	Straggler    *Straggler    `json:"straggler,omitempty"`
	Drift        *Drift        `json:"drift,omitempty"`
}

// Availability is a per-client churn schedule plus correlated outages,
// replacing the engine's flat DropProb coin-flip. Each client carries an
// up/down state evolving as a two-state Markov chain advanced once per round
// (up→down with DownProb, down→up with UpProb), so downtime is bursty: a
// client that fails stays away for a geometric number of rounds instead of
// re-flipping a fair coin every round. Independently, with OutageProb per
// round a correlated outage takes a uniformly drawn OutageFrac of the
// population down for that round (a rack/region failure, not independent
// client flakiness).
type Availability struct {
	DownProb   float64 `json:"down_prob,omitempty"`   // up→down transition per round
	UpProb     float64 `json:"up_prob,omitempty"`     // down→up transition per round
	OutageProb float64 `json:"outage_prob,omitempty"` // correlated outage per round
	OutageFrac float64 `json:"outage_frac,omitempty"` // population fraction an outage takes down
}

// Straggler is the partial-work model: with Prob, a sampled client completes
// only a uniform fraction in [MinFrac, MaxFrac] of its local step budget
// that round. Momentum methods must tolerate this — they normalise by the
// steps actually taken (ClientResult.Steps), not the configured budget.
type Straggler struct {
	Prob    float64 `json:"prob,omitempty"`
	MinFrac float64 `json:"min_frac,omitempty"` // default 0.2
	MaxFrac float64 `json:"max_frac,omitempty"` // default 0.8
}

// Drift interpolates the client label distributions between two long-tail
// profiles over the run: at each of Stages-1 stage boundaries the engine
// re-partitions the training set with a Dirichlet concentration moved
// geometrically from the spec's base β toward ToBeta, and trims tail
// classes so the effective train profile moves from the base imbalance
// factor toward ToIF. Stage 0 is exactly the base environment; the last
// stage reaches the targets. Zero targets keep the corresponding base value.
type Drift struct {
	ToBeta float64 `json:"to_beta,omitempty"` // target Dirichlet β (0 = keep base)
	ToIF   float64 `json:"to_if,omitempty"`   // target imbalance factor (0 = keep base)
	Stages int     `json:"stages,omitempty"`  // discrete stages over the run; default 4
}

// defaults for Normalized; exported constants document the canonical values.
const (
	DefaultMinFrac = 0.2
	DefaultMaxFrac = 0.8
	DefaultStages  = 4
)

// IsZero reports whether the scenario carries no dynamics at all.
func (s *Scenario) IsZero() bool {
	return s == nil || (s.Availability.isZero() && s.Straggler.isZero() && s.Drift.isZero())
}

// isZero reports whether the block carries no *effective* dynamics: with
// down_prob=0 the churn chain can never take a client down (everyone starts
// up), and an outage needs both its probability and its fraction positive.
// Inert blocks canonicalise away so behaviorally identical specs share a
// fingerprint.
func (a *Availability) isZero() bool {
	return a == nil || (a.DownProb == 0 && !a.hasOutage())
}

func (a *Availability) hasOutage() bool {
	return a.OutageProb > 0 && a.OutageFrac > 0
}

func (st *Straggler) isZero() bool {
	return st == nil || st.Prob == 0
}

func (d *Drift) isZero() bool {
	return d == nil || (d.ToBeta == 0 && d.ToIF == 0)
}

// Normalized returns the canonical form: nil for a dynamics-free scenario,
// empty sub-blocks dropped, and unset knobs replaced by their defaults — so
// two spellings that run identically marshal to identical JSON and share a
// fingerprint. It never mutates the receiver.
func (s *Scenario) Normalized() *Scenario {
	if s.IsZero() {
		return nil
	}
	out := &Scenario{}
	if !s.Availability.isZero() {
		a := *s.Availability
		if a.UpProb == 0 {
			// A chain that can go down but never come back models permanent
			// departure; the canonical default is symmetric recovery.
			a.UpProb = a.DownProb
		}
		if a.DownProb == 0 {
			// Outage-only block: the chain never moves, so its up_prob is
			// unobservable — zero it for canonical form.
			a.UpProb = 0
		}
		if !a.hasOutage() {
			// A half-specified outage (probability without fraction, or vice
			// versa) never fires; canonicalise the pair away.
			a.OutageProb, a.OutageFrac = 0, 0
		}
		out.Availability = &a
	}
	if !s.Straggler.isZero() {
		st := *s.Straggler
		if st.MinFrac == 0 {
			st.MinFrac = DefaultMinFrac
		}
		if st.MaxFrac == 0 {
			st.MaxFrac = DefaultMaxFrac
		}
		out.Straggler = &st
	}
	if !s.Drift.isZero() {
		d := *s.Drift
		if d.Stages == 0 {
			d.Stages = DefaultStages
		}
		out.Drift = &d
	}
	return out
}

// Validate range-checks a normalized scenario. It is nil-safe (a nil
// scenario is trivially valid).
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	// Checked on the raw spelling — Normalized repairs or drops these
	// forms, but a user who wrote them asked for something the model cannot
	// express, so they are rejected rather than silently rewritten:
	//   - down_prob=1 with no recovery is permanent total departure;
	//   - a half-specified outage (probability without fraction, or vice
	//     versa) never fires;
	//   - a non-empty block that is still inert (e.g. only up_prob set)
	//     would canonicalise to the static scenario under a different
	//     spelling than the user intended.
	if a := s.Availability; a != nil {
		if a.DownProb >= 1 && a.UpProb == 0 {
			return fmt.Errorf("scenario: availability with down_prob=1 and no recovery leaves no clients")
		}
		if (a.OutageProb > 0) != (a.OutageFrac > 0) {
			return fmt.Errorf("scenario: outage needs both outage_prob and outage_frac positive: %+v", *a)
		}
		if *a != (Availability{}) && a.isZero() {
			return fmt.Errorf("scenario: availability block has no effect (no down_prob, no complete outage): %+v", *a)
		}
	}
	if st := s.Straggler; st != nil && *st != (Straggler{}) && st.isZero() {
		return fmt.Errorf("scenario: straggler block has no effect (prob is zero): %+v", *st)
	}
	if d := s.Drift; d != nil && *d != (Drift{}) && d.isZero() {
		return fmt.Errorf("scenario: drift block has no effect (no to_beta or to_if target): %+v", *d)
	}
	n := s.Normalized()
	if n == nil {
		return nil
	}
	if a := n.Availability; a != nil {
		if bad(a.DownProb, 0, 1) || bad(a.UpProb, 0, 1) || bad(a.OutageProb, 0, 1) || bad(a.OutageFrac, 0, 1) {
			return fmt.Errorf("scenario: availability probabilities must lie in [0,1]: %+v", *a)
		}
	}
	if st := n.Straggler; st != nil {
		if bad(st.Prob, 0, 1) || st.MinFrac <= 0 || st.MaxFrac > 1 || st.MinFrac > st.MaxFrac {
			return fmt.Errorf("scenario: straggler needs prob in [0,1] and 0 < min_frac <= max_frac <= 1: %+v", *st)
		}
	}
	if d := n.Drift; d != nil {
		if d.ToBeta < 0 || d.ToIF < 0 || d.ToIF > 1 {
			return fmt.Errorf("scenario: drift targets out of range (to_beta >= 0, to_if in [0,1]): %+v", *d)
		}
		// The upper bound keeps round*stages far from integer overflow for
		// any round count the serving limits admit (10^6 rounds · 10^4
		// stages ≪ 2^63); more stages than rounds are clamped by the Sim
		// anyway.
		if d.Stages < 2 || d.Stages > 10_000 {
			return fmt.Errorf("scenario: drift stages must lie in [2, 10000], got %d", d.Stages)
		}
	}
	return nil
}

func bad(v, lo, hi float64) bool { return math.IsNaN(v) || v < lo || v > hi }

// Named resolves a scenario preset by name. "" and "static" mean no
// dynamics (nil). The presets are the evaluation regimes the related
// long-tail federated work studies: bursty churn, correlated outages,
// partial local work, and distribution drift.
func Named(name string) (*Scenario, error) {
	switch name {
	case "", "static":
		return nil, nil
	case "churn":
		return &Scenario{Availability: &Availability{DownProb: 0.15, UpProb: 0.35}}, nil
	case "outage":
		return &Scenario{Availability: &Availability{OutageProb: 0.2, OutageFrac: 0.5}}, nil
	case "stragglers":
		return &Scenario{Straggler: &Straggler{Prob: 0.4, MinFrac: 0.2, MaxFrac: 0.7}}, nil
	case "drift":
		return &Scenario{Drift: &Drift{ToBeta: 1, ToIF: 0.05, Stages: DefaultStages}}, nil
	case "churn+drift":
		return &Scenario{
			Availability: &Availability{DownProb: 0.15, UpProb: 0.35},
			Drift:        &Drift{ToBeta: 1, ToIF: 0.05, Stages: DefaultStages},
		}, nil
	case "hostile":
		// Everything at once: bursty churn, occasional correlated outages,
		// heavy stragglers and drift toward a harsher tail.
		return &Scenario{
			Availability: &Availability{DownProb: 0.2, UpProb: 0.4, OutageProb: 0.1, OutageFrac: 0.5},
			Straggler:    &Straggler{Prob: 0.5, MinFrac: 0.2, MaxFrac: 0.6},
			Drift:        &Drift{ToBeta: 1, ToIF: 0.05, Stages: DefaultStages},
		}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown preset %q (known: %v)", name, Names())
	}
}

// Names lists the named presets, static first.
func Names() []string {
	return []string{"static", "churn", "outage", "stragglers", "drift", "churn+drift", "hostile"}
}

// CanonicalName maps preset aliases to their canonical spelling ("" for the
// static scenario), leaving unknown names untouched for Named to reject.
func CanonicalName(name string) string {
	if name == "static" {
		return ""
	}
	return name
}

// KeepFracs returns the per-class keep fraction that moves a long-tail
// train profile with imbalance factor baseIF to one with factor ifac by
// subsetting: keep_c = min(1, (ifac/baseIF)^{c/(C-1)}). Classes are the
// profile's canonical order (class 0 = head). Drifting toward a *larger*
// (more balanced) IF cannot add samples, so those fractions clamp at 1.
func KeepFracs(classes int, baseIF, ifac float64) []float64 {
	out := make([]float64, classes)
	for c := range out {
		out[c] = 1
	}
	if classes <= 1 || baseIF <= 0 || ifac <= 0 || ifac >= baseIF {
		return out
	}
	ratio := ifac / baseIF
	for c := 1; c < classes; c++ {
		frac := math.Pow(ratio, float64(c)/float64(classes-1))
		if frac < 1 {
			out[c] = frac
		}
	}
	return out
}

// Lerp interpolates geometrically from base toward target: base^(1−t)·target^t.
// A zero target keeps the base (the "unset" sentinel in Drift).
func Lerp(base, target, t float64) float64 {
	if target <= 0 || base <= 0 {
		return base
	}
	return base * math.Pow(target/base, t)
}

// rng stream tags; distinct per concern so adding one stream never perturbs
// another (the determinism contract documented in DESIGN.md).
const (
	tagChurn    = 0x5cea01
	tagOutage   = 0x5cea02
	tagStraggle = 0x5cea03
	tagDrift    = 0x5cea04
)

// DriftSeed derives the partition seed for a drift stage, exported so the
// engine and tests agree on the stream.
func DriftSeed(seed uint64, stage int) uint64 {
	return xrand.DeriveSeed(seed, uint64(stage), tagDrift)
}
