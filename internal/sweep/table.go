package sweep

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table used to render every experiment's
// output in the same rows/columns the paper reports.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string (the form the HTTP sweep-result
// endpoint embeds).
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// F formats an accuracy/metric for table cells.
func F(v float64) string { return fmt.Sprintf("%.4f", v) }

// SeriesTable renders aligned accuracy-vs-round curves: one column per
// labelled series, one row per evaluation round.
func SeriesTable(title string, rounds []int, labels []string, series [][]float64) *Table {
	t := &Table{Title: title, Headers: append([]string{"round"}, labels...)}
	for i, r := range rounds {
		row := []string{fmt.Sprintf("%d", r)}
		for _, s := range series {
			if i < len(s) {
				row = append(row, F(s[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
