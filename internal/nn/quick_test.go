package nn

import (
	"math"
	"testing"
	"testing/quick"

	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

// TestForwardDeterministicProperty: identical weights + identical inputs
// must produce identical outputs regardless of instance.
func TestForwardDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewMLP(seed, 5, []int{7}, 3, true)
		b := NewMLP(seed+1, 5, []int{7}, 3, true)
		b.SetVector(a.Vector())
		r := xrand.New(seed + 2)
		x := tensor.NewDense(4, 5)
		r.FillNorm(x.Data, 0, 1)
		oa := a.Forward(x, false)
		ob := b.Forward(x, false)
		return tensor.Equal(oa, ob, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearHomogeneityProperty: a bias-free linear layer must be
// homogeneous: f(c·x) = c·f(x).
func TestLinearHomogeneityProperty(t *testing.T) {
	f := func(seed uint64, cRaw uint8) bool {
		c := 0.1 + float64(cRaw)/32
		r := xrand.New(seed)
		l := NewLinear(r, 6, 4)
		tensor.Zero(l.B.Data)
		x := tensor.NewDense(3, 6)
		r.FillNorm(x.Data, 0, 1)
		fx := l.Forward(x, true).Clone()
		scaled := x.Clone()
		tensor.Scale(scaled.Data, c)
		fcx := l.Forward(scaled, true)
		want := fx
		tensor.Scale(want.Data, c)
		return tensor.Equal(fcx, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestReLUIdempotentProperty: relu(relu(x)) == relu(x).
func TestReLUIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		x := tensor.NewDense(2, 9)
		r.FillNorm(x.Data, 0, 2)
		relu := NewReLU()
		once := relu.Forward(x, true).Clone()
		twice := relu.Forward(once, true)
		return tensor.Equal(once, twice, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchNormEvalIsAffineProperty: in inference mode BatchNorm is an
// affine map, so bn(a+b) − bn(a) − bn(b) + bn(0) == 0 elementwise.
func TestBatchNormEvalIsAffineProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		bn := NewBatchNorm(5, 1)
		r.FillNorm(bn.RunMean.Data, 0, 1)
		r.FillUniform(bn.RunVar.Data, 0.5, 2)
		r.FillNorm(bn.Gamma.Data, 1, 0.2)
		r.FillNorm(bn.Beta.Data, 0, 0.5)
		mk := func() *tensor.Dense {
			x := tensor.NewDense(1, 5)
			r.FillNorm(x.Data, 0, 1)
			return x
		}
		a, b := mk(), mk()
		sum := a.Clone()
		tensor.AddVec(sum.Data, b.Data)
		zero := tensor.NewDense(1, 5)
		fa := bn.Forward(a, false)
		fb := bn.Forward(b, false)
		fsum := bn.Forward(sum, false)
		f0 := bn.Forward(zero, false)
		for i := range fsum.Data {
			if math.Abs(fsum.Data[i]-fa.Data[i]-fb.Data[i]+f0.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGradientAdditivityProperty: accumulating gradients over two backward
// passes equals the gradient of the summed losses (grad buffers accumulate).
func TestGradientAdditivityProperty(t *testing.T) {
	r := xrand.New(11)
	net := WrapNetwork(4, 2, NewLinear(r, 4, 2))
	x1 := tensor.NewDense(3, 4)
	x2 := tensor.NewDense(3, 4)
	r.FillNorm(x1.Data, 0, 1)
	r.FillNorm(x2.Data, 0, 1)
	dout := tensor.NewDense(3, 2)
	r.FillNorm(dout.Data, 0, 1)

	net.ZeroGrad()
	net.Forward(x1, true)
	net.Backward(dout)
	g1 := net.GradVector()

	net.ZeroGrad()
	net.Forward(x2, true)
	net.Backward(dout)
	g2 := net.GradVector()

	net.ZeroGrad()
	net.Forward(x1, true)
	net.Backward(dout)
	net.Forward(x2, true)
	net.Backward(dout)
	gBoth := net.GradVector()

	want := make([]float64, len(g1))
	copy(want, g1)
	tensor.AddVec(want, g2)
	if tensor.L2Dist(gBoth, want) > 1e-9 {
		t.Fatalf("gradient accumulation not additive: dist %v", tensor.L2Dist(gBoth, want))
	}
}

// TestStepVecInverseProperty: stepping by +v then −v restores the weights.
func TestStepVecInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		net := NewMLP(seed, 4, []int{5}, 3, true)
		before := net.Vector()
		r := xrand.New(seed + 9)
		v := make([]float64, net.NumParams())
		r.FillNorm(v, 0, 1)
		net.StepVec(0.37, v)
		net.StepVec(-0.37, v)
		return tensor.L2Dist(before, net.Vector()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
