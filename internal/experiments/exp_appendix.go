package experiments

import (
	"fmt"

	"fedwcm/internal/data"
	"fedwcm/internal/fl"
	"fedwcm/internal/he"
	"fedwcm/internal/nn"
	"fedwcm/internal/partition"
	"fedwcm/internal/sweep"
	"fedwcm/internal/xrand"
)

// table5 (Appendix A): FedGraB-style quantity-skewed partition, comparing
// FedAvg / FedCM / FedWCM-X across IFs at β=0.1.
func init() {
	ifs := []float64{1, 0.4, 0.1, 0.06, 0.04, 0.01}
	methodsList := []string{"fedavg", "fedcm", "fedwcm-x"}
	register(&Experiment{
		ID:    "table5",
		Title: "Table 5 (Appendix A): FedGraB partition, FedAvg/FedCM/FedWCM-X",
		Sweep: func(opt Options) sweep.Spec {
			return sweep.Spec{
				Methods:   methodsList,
				IFs:       ifs,
				Partition: "fedgrab",
				Seeds:     []uint64{opt.Seed},
				Effort:    opt.Effort,
			}
		},
		Render: func(opt Options, res *sweep.Result) error {
			headers := []string{"method"}
			for _, f := range ifs {
				headers = append(headers, fmt.Sprintf("IF=%g", f))
			}
			t := &sweep.Table{Title: "Table 5 (beta=0.1, FedGraB partition)", Headers: headers}
			for _, m := range methodsList {
				row := []string{m}
				for _, f := range ifs {
					row = append(row, res.CellValue(sweep.Axes{Method: m, IF: f}))
				}
				t.AddRow(row...)
			}
			t.Render(opt.Out)
			return nil
		},
	})
}

// fig11 (Appendix A): the data distribution produced by the FedGraB-style
// partition — quantity-skew statistics and a size histogram. Hand-rolled:
// it measures the partitioner, not a training run.
func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Figure 11 (Appendix A): client size distribution under FedGraB partition",
		Run: func(opt Options) error {
			spec, err := data.Lookup("cifar10-syn")
			if err != nil {
				return err
			}
			train, _ := spec.MakeScaled(opt.Seed, 0.1, sweep.ScaleData(5, opt.Effort))
			rng := xrand.New(xrand.DeriveSeed(opt.Seed, 0x9a27))
			for _, mode := range []string{"fedgrab", "equal"} {
				var part *partition.Partition
				if mode == "fedgrab" {
					part = partition.FedGraBStyle(rng, train, 100, 0.1)
				} else {
					part = partition.EqualQuantity(rng, train, 100, 0.1)
				}
				st := partition.ComputeStats(part, train.ClassProportions())
				fmt.Fprintf(opt.Out, "%s partition: %s\n", mode, st)
				fmt.Fprintln(opt.Out, partition.Histogram(part, 8))
			}
			return nil
		},
	})
}

// fig12 (Appendix A): method curves under the FedGraB partition, with
// FedWCM-X as "ours".
func init() {
	methodsList := []string{
		"fedwcm-x", "fedavg", "balancefl", "fedgrab",
		"fedcm", "fedcm+focal", "fedcm+balancesampler",
	}
	register(&Experiment{
		ID:    "fig12",
		Title: "Figure 12 (Appendix A): methods under FedGraB partition (beta=0.1, IF=0.1)",
		Sweep: func(opt Options) sweep.Spec {
			return sweep.Spec{
				Methods:   methodsList,
				Partition: "fedgrab",
				Seeds:     []uint64{opt.Seed},
				Effort:    opt.Effort,
			}
		},
		Render: func(opt Options, res *sweep.Result) error {
			var rounds []int
			series := make([][]float64, len(methodsList))
			for i, m := range methodsList {
				r, a := res.CurveOf(sweep.Axes{Method: m})
				if rounds == nil {
					rounds = r
				}
				series[i] = a
			}
			sweep.SeriesTable("Figure 12 (test accuracy, FedGraB partition)", rounds, methodsList, series).Render(opt.Out)
			return nil
		},
	})
}

// table6 (Appendix C): plaintext vs ciphertext sizes for the HE-protected
// distribution gathering, across class counts. Hand-rolled: it measures the
// HE protocol, not a training run.
func init() {
	register(&Experiment{
		ID:    "table6",
		Title: "Table 6 (Appendix C): HE plaintext/ciphertext sizes",
		Run: func(opt Options) error {
			rng := xrand.New(opt.Seed)
			proto := he.DefaultProtocol()
			t := &sweep.Table{
				Title: "Table 6 (Paillier 1024-bit, 32-bit slots, 100 clients)",
				Headers: []string{"classes", "plaintext(B)", "ciphertext(B)", "ciphertexts",
					"upload-total(B)", "enc/client", "aggregate", "decrypt"},
			}
			for _, classes := range []int{10, 20, 50, 100} {
				counts := make([][]int, 100)
				for k := range counts {
					counts[k] = make([]int, classes)
					for c := range counts[k] {
						counts[k][c] = rng.Intn(500)
					}
				}
				_, rep, err := proto.Run(counts)
				if err != nil {
					return err
				}
				t.AddRow(
					fmt.Sprintf("%d", classes),
					fmt.Sprintf("%d", rep.PlaintextBytes),
					fmt.Sprintf("%d", rep.CiphertextBytes),
					fmt.Sprintf("%d", rep.CiphertextsEach),
					fmt.Sprintf("%d", rep.TotalUploadBytes),
					rep.EncryptPerClient.String(),
					rep.AggregateTotal.String(),
					rep.DecryptTotal.String(),
				)
			}
			t.Render(opt.Out)
			return nil
		},
	})
}

// fig18 (Appendix D): ten heterogeneous-FL methods on the balanced (IF=1)
// non-IID setting — train accuracy (fig 18) and test accuracy (fig 19).
// Hand-rolled: each cell probes train accuracy via the Mod hook.
func init() {
	register(&Experiment{
		ID:    "fig18",
		Title: "Figures 18-19 (Appendix D): heterogeneous-FL baselines (beta=0.1, IF=1)",
		Run: func(opt Options) error {
			methodsList := []string{
				"fedavg", "fedcm", "fedprox", "scaffold", "feddyn",
				"fedsam", "mofedsam", "fedspeed", "fedsmoo", "fedlesam",
			}
			trainAcc := make(map[string]*[]float64, len(methodsList))
			var cells []cell
			for _, m := range methodsList {
				spec := specFor(opt, "cifar10-syn", m, 0.1, 1)
				series := new([]float64)
				trainAcc[m] = series
				spec.Mod = func(env *fl.Env) {
					n := env.Train.Len()
					if n > 1000 {
						n = 1000
					}
					idx := make([]int, n)
					for i := range idx {
						idx[i] = i
					}
					probeDS := env.Train.Subset(idx)
					env.Probes = append(env.Probes, func(round int, net *nn.Network) {
						acc, _ := fl.Evaluate(net, probeDS, 256)
						*series = append(*series, acc)
					})
				}
				cells = append(cells, cell{Key: m, Spec: spec})
			}
			hists, err := runCells(cells, opt.CellWorkers)
			if err != nil {
				return err
			}
			var rounds []int
			testSeries := make([][]float64, len(methodsList))
			trainSeries := make([][]float64, len(methodsList))
			for i, m := range methodsList {
				r, a := hists[m].AccSeries()
				if rounds == nil {
					rounds = r
				}
				testSeries[i] = a
				trainSeries[i] = *trainAcc[m]
			}
			sweep.SeriesTable("Figure 18 (train accuracy over rounds)", rounds, methodsList, trainSeries).Render(opt.Out)
			fmt.Fprintln(opt.Out)
			sweep.SeriesTable("Figure 19 (test accuracy over rounds)", rounds, methodsList, testSeries).Render(opt.Out)
			return nil
		},
	})
}
