// Package serve exposes the experiment harness as an HTTP service backed by
// the content-addressed store (internal/store): specs come in as JSON, run
// ids are spec fingerprints, and results are cached so any grid cell is
// computed at most once no matter how many clients ask for it. Above single
// runs sits the sweep API: a declarative grid (sweep.Spec) expands into
// cells scheduled through the same pool and store, and its results
// aggregate server-side into mean±std groups.
//
// Endpoints (full reference with examples in docs/API.md):
//
//	POST /v1/runs               submit a RunSpec; cache hits return the
//	                            stored history immediately (status
//	                            "cached"), misses are queued on a bounded
//	                            worker pool (202)
//	GET  /v1/runs/{id}          status + progress + history for a run id
//	GET  /v1/runs/{id}/events   SSE per-round progress ("round" events, then
//	                            one terminal "done" event)
//	POST /v1/sweeps             submit a sweep.Spec grid; cells hit the
//	                            store or queue behind in-flight runs
//	GET  /v1/sweeps/{id}        per-cell status: cached / queued / running /
//	                            done / failed
//	GET  /v1/sweeps/{id}/result aggregated mean±std groups + rendered table
//	                            (202 while cells are still running)
//	GET  /v1/sweeps/{id}/events SSE per-cell completion ("cell" events, then
//	                            one terminal "done" event)
//	GET  /v1/experiments        registry listing: experiment ids, methods,
//	                            datasets
//
// Identical in-flight submissions coalesce onto one execution
// (single-flight), for sweeps cell-by-cell; identical finished submissions
// are store hits. Execution itself is delegated to a dispatch.Executor —
// an in-process bounded pool by default, or a remote-worker coordinator
// (fedserve -remote) whose lease endpoints this server mounts alongside
// the public API. Either way the executor's queue bounds memory: a full
// queue rejects direct run submissions with 503, while accepted sweeps
// trickle their cells in as space frees up.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"fedwcm/internal/data"
	"fedwcm/internal/dispatch"
	"fedwcm/internal/experiments"
	"fedwcm/internal/fl"
	"fedwcm/internal/fl/methods"
	"fedwcm/internal/obs"
	"fedwcm/internal/store"
	"fedwcm/internal/sweep"
	"fedwcm/internal/wire"
)

// Runner executes one spec, reporting per-round progress and honouring ctx
// cancellation. The default is sweep.RunSpec.RunCtx against the shared env
// cache; tests substitute counting or canned runners.
type Runner = sweep.Runner

// Config wires a Server.
type Config struct {
	Store *store.Store // required: result cache and artifact store
	// Executor, when set, is the dispatch backend runs execute on (e.g. a
	// dispatch.Coordinator for the remote-worker mode; its worker endpoints
	// are mounted automatically). The server owns it from here on: Close
	// closes it. Nil builds a dispatch.Local from the fields below.
	Executor   dispatch.Executor
	Workers    int    // local backend: concurrent training runs; 0 = 2
	QueueDepth int    // local backend: queued (not yet running) submissions; 0 = 64
	Runner     Runner // local backend: nil = run specs for real
	// Envs backs environment construction for the default runner: runs and
	// sweep cells sharing a dataset+partition sub-spec build it once. Nil
	// gets a fresh cache of DefaultEnvCacheCap; ignored when Runner or
	// Executor is overridden (the cache counters then stay zero).
	Envs *sweep.EnvCache
	// Admission bounds what the run/sweep submission endpoints accept
	// (per-tenant rate limits, queue-depth backpressure). The zero value
	// admits everything.
	Admission AdmissionConfig
	// Logf defaults to the unified slog route (obs.Logf("serve")).
	Logf func(format string, args ...any)
	// Metrics receives the server's series (HTTP, SSE, sweep cells, plus the
	// store's and env cache's); nil uses the process default registry. Tracer
	// backs /debug/trace; nil uses the process default tracer.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
}

// Server is the run service. Create with New, serve with net/http, stop
// with Close.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	exec dispatch.Executor

	mu       sync.Mutex
	runs     map[string]*run      // fingerprint → in-process record
	sweeps   map[string]*sweepRun // sweep fingerprint → in-process record
	sweepSeq uint64               // creation counter for sweep eviction order
	closing  bool                 // set by Close under mu; no enqueue once true

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup // run watchers
	feedWg    sync.WaitGroup // sweep feeders

	sm  serveMetrics
	adm *admission // nil unless Config.Admission asks for limits
}

// New validates cfg, builds (or adopts) the dispatch backend and returns
// the server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Envs == nil {
		cfg.Envs = sweep.NewEnvCache(0)
	}
	if cfg.Logf == nil {
		cfg.Logf = obs.Logf("serve")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer()
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		runs:   make(map[string]*run),
		sweeps: make(map[string]*sweepRun),
		closed: make(chan struct{}),
	}
	s.sm = newServeMetrics(cfg.Metrics, s)
	cfg.Store.Instrument(cfg.Metrics)
	cfg.Envs.Instrument(cfg.Metrics)
	if cfg.Executor != nil {
		s.exec = cfg.Executor
	} else {
		runner := dispatch.Runner(sweep.DispatchRunner(cfg.Envs))
		if cfg.Runner != nil {
			// Test/override path: decode the dispatched job back into the
			// spec shape the override expects.
			override := cfg.Runner
			runner = func(ctx context.Context, job dispatch.Job, onRound func(fl.RoundStat)) (*fl.History, error) {
				var spec sweep.RunSpec
				if err := json.Unmarshal(job.Spec, &spec); err != nil {
					return nil, fmt.Errorf("serve: decoding job spec: %w", err)
				}
				return override(ctx, spec, onRound)
			}
		}
		local, err := dispatch.NewLocal(dispatch.LocalConfig{
			Runner:  runner,
			Workers: cfg.Workers,
			Queue:   cfg.QueueDepth,
			Store:   cfg.Store,
			Logf:    cfg.Logf,
			Metrics: cfg.Metrics,
			Tracer:  cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		s.exec = local
	}
	// Routes are wrapped with the http-layer metrics under their static
	// patterns, so label cardinality is the route table, not the URL space.
	handle := func(pattern, route string, h http.HandlerFunc) {
		s.mux.Handle(pattern, s.sm.http.Wrap(route, h))
	}
	s.adm = newAdmission(cfg.Admission, s.execPending, cfg.Metrics)
	handle("POST /v1/runs", "/v1/runs", s.admitted(s.handleSubmit))
	handle("GET /v1/runs/{id}", "/v1/runs/{id}", s.handleStatus)
	handle("GET /v1/runs/{id}/events", "/v1/runs/{id}/events", s.handleEvents)
	handle("POST /v1/sweeps", "/v1/sweeps", s.admitted(s.handleSweepSubmit))
	handle("GET /v1/sweeps/{id}", "/v1/sweeps/{id}", s.handleSweepStatus)
	handle("GET /v1/sweeps/{id}/result", "/v1/sweeps/{id}/result", s.handleSweepResult)
	handle("GET /v1/sweeps/{id}/events", "/v1/sweeps/{id}/events", s.handleSweepEvents)
	handle("GET /v1/experiments", "/v1/experiments", s.handleRegistry)
	// Raw artifact bytes for store replication: every server (shard or not)
	// exports what its store holds, so peers can read through to it.
	handle("GET /v1/artifacts/{id}", "/v1/artifacts/{id}", cfg.Store.ArtifactHandler())
	// A backend with worker-facing endpoints (the remote coordinator)
	// serves them from this listener too.
	if m, ok := s.exec.(interface{ Mount(*http.ServeMux) }); ok {
		m.Mount(s.mux)
	}
	obs.Mount(s.mux, cfg.Metrics, cfg.Tracer, nil)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops accepting new work, cancels in-flight jobs and drains every
// subscriber. Ordering: refuse new submissions (closing flag), close the
// executor — which unblocks sweep feeders waiting for queue space, fails
// queued jobs, and cancels running ones via context so they return within
// a round — then wait for the feeders and run watchers. Every run record
// reaches a terminal state on this path, so SSE streams end with a "done"
// event instead of being abandoned mid-stream.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		close(s.closed)
	})
	s.exec.Close()
	s.feedWg.Wait()
	s.wg.Wait()
}

// watch drives one run record from its dispatch handle: the handle
// completes (the backend has already persisted a success to the store),
// the record finishes, and — once the artifact is servable from the store
// — the record is dropped so s.runs stays bounded by in-flight + failed
// work.
func (s *Server) watch(r *run, h dispatch.Handle) {
	defer s.wg.Done()
	<-h.Done()
	hist, err := h.Result()
	r.finish(hist, err)
	if err == nil {
		if _, ok, serr := s.cfg.Store.Get(r.id); serr == nil && ok {
			s.dropRun(r.id, r)
		}
		// A run whose persist failed keeps its record: callers still get
		// the history from memory, only re-serving after restart is lost.
	}
}

// runResponse is the JSON shape shared by submit and status responses.
type runResponse struct {
	ID       string         `json:"id"`
	Status   string         `json:"status"`
	Progress []fl.RoundStat `json:"progress,omitempty"`
	History  *fl.History    `json:"history,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// writeJSON encodes v before touching the response so an encode failure
// (e.g. a NaN in a diverged run's history — json.Marshal rejects NaN) turns
// into a well-formed 500 instead of a 200 with a truncated body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(map[string]string{"error": "encoding response: " + err.Error()})
		code = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeRun writes a run status response in whichever encoding the client
// asked for: clients that list wire.ContentType in Accept (the dispatch
// client does) get the compact binary codec, everyone else gets the JSON
// shape unchanged. Errors keep flowing through httpError as JSON either
// way — only success bodies are worth compressing.
func (s *Server) writeRun(w http.ResponseWriter, req *http.Request, code int, rr runResponse) {
	if !strings.Contains(req.Header.Get("Accept"), wire.ContentType) {
		writeJSON(w, code, rr)
		return
	}
	start := time.Now()
	body := wire.EncodeRunStatus(&wire.RunStatus{
		ID:       rr.ID,
		Status:   rr.Status,
		Error:    rr.Error,
		Progress: rr.Progress,
		History:  rr.History,
	})
	s.sm.observeWireEncode("runstatus", len(body), time.Since(start).Seconds())
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(code)
	w.Write(body)
}

// Sentinel failures from ensureCell, mapped to HTTP statuses by the
// handlers that can hit them.
var (
	errQueueFull = errors.New("run queue full")
	errClosing   = errors.New("server shutting down")
)

// ensureCell resolves one grid cell to either a finished history (hist !=
// nil, status "cached") or a live run record (r != nil) — submitting a
// fresh job to the dispatch backend when the cell is neither stored nor in
// flight. It is the single-flight core shared by direct run submission and
// sweep scheduling; block selects between failing fast on a full queue
// (direct submissions → 503) and waiting for space (sweep feeders
// trickling a grid in).
func (s *Server) ensureCell(spec sweep.RunSpec, fp string, block bool) (r *run, hist *fl.History, status string, err error) {
	// Fast path, outside the lock: the grid cell has been computed before.
	if hist, ok, err := s.cfg.Store.Get(fp); err != nil {
		return nil, nil, "", fmt.Errorf("store: %w", err)
	} else if ok {
		return nil, hist, StatusCached, nil
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, nil, "", errClosing
	}
	// Single-flight: identical in-flight submissions share one record. A
	// done record only lingers here when persisting it failed (or in the
	// instant before execute drops it), so it is served as a cache hit.
	if r, ok := s.runs[fp]; ok {
		status, _, hist, _ := r.snapshot()
		switch status {
		case StatusDone:
			s.mu.Unlock()
			return nil, hist, StatusCached, nil
		case StatusFailed:
			// A failed attempt does not pin the cell failed forever; fall
			// through and replace the record with a fresh attempt.
		default:
			s.mu.Unlock()
			return r, nil, status, nil
		}
	}
	// Re-check the store under the lock: a run can Put its artifact and
	// drop its record between the unlocked Get above and here, and
	// re-executing a computed cell would break compute-at-most-once. On a
	// true miss this is a cheap ENOENT probe.
	if hist, ok, err := s.cfg.Store.Get(fp); err != nil {
		s.mu.Unlock()
		return nil, nil, "", fmt.Errorf("store: %w", err)
	} else if ok {
		s.mu.Unlock()
		return nil, hist, StatusCached, nil
	}
	// The record must be visible (for coalescing) before the submit, and
	// the submit cannot hold the lock (a blocking submit waits for queue
	// space). A recorded-but-not-yet-submitted run is indistinguishable
	// from a queued one to observers; a refused submit finishes the record
	// (any coalescer that joined meanwhile observes the failure) and drops
	// it so a later resubmission starts fresh. The watcher's wg.Add happens
	// under the same critical section as the closing check, so Close — which
	// sets closing under mu before waiting — can never start waiting between
	// the check and the Add.
	r = newRun(fp, spec)
	s.runs[fp] = r
	s.wg.Add(1)
	s.mu.Unlock()
	specJSON, err := spec.CanonicalJSON()
	if err != nil {
		s.wg.Done()
		r.finish(nil, err)
		s.dropRun(fp, r)
		return nil, nil, "", err
	}
	h, err := s.exec.Submit(dispatch.Job{ID: fp, Spec: specJSON}, dispatch.SubmitOpts{
		Block:   block,
		OnRound: r.onRound,
		OnStart: r.setRunning,
	})
	if err != nil {
		s.wg.Done()
		r.finish(nil, err)
		s.dropRun(fp, r)
		switch {
		case errors.Is(err, dispatch.ErrQueueFull):
			return nil, nil, "", errQueueFull
		case errors.Is(err, dispatch.ErrClosed):
			return nil, nil, "", errClosing
		}
		return nil, nil, "", err
	}
	go s.watch(r, h) // owns the wg slot added above
	return r, nil, StatusQueued, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields() // a typo'd field means a different cell than intended
	var spec experiments.RunSpec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, hist, status, err := s.ensureCell(spec, fp, false)
	switch {
	case errors.Is(err, errClosing):
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, errQueueFull):
		httpError(w, http.StatusServiceUnavailable, "run queue full (%d pending)", s.cfg.QueueDepth)
	case err != nil:
		httpError(w, http.StatusInternalServerError, "%v", err)
	case hist != nil:
		s.writeRun(w, req, http.StatusOK, runResponse{ID: fp, Status: StatusCached, History: hist})
	default:
		s.writeRun(w, req, http.StatusAccepted, runResponse{ID: fp, Status: status})
	}
}

// dropRun removes a run's record once its artifact is in the store (or the
// record was superseded), so s.runs stays bounded by live + failed work.
func (s *Server) dropRun(fp string, r *run) {
	s.mu.Lock()
	if s.runs[fp] == r {
		delete(s.runs, fp)
	}
	s.mu.Unlock()
}

// lookup resolves a run id against in-process records first, then the
// store — read-through: on a replicated store (shards pointing at each
// other), an artifact computed by a peer is fetched, verified and served
// as if it were local. The bool reports whether the id is known at all; a
// malformed id cannot name anything, so it is "not found" rather than an
// error (errors mean the store itself failed and map to 500).
func (s *Server) lookup(ctx context.Context, id string) (*run, *fl.History, bool, error) {
	if !store.ValidFingerprint(id) {
		return nil, nil, false, nil
	}
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if ok {
		return r, nil, true, nil
	}
	hist, ok, err := s.cfg.Store.Fetch(ctx, id)
	if err != nil || !ok {
		return nil, nil, false, err
	}
	return nil, hist, true, nil
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r, stored, ok, err := s.lookup(req.Context(), id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %s", id)
		return
	}
	if r == nil {
		s.writeRun(w, req, http.StatusOK, runResponse{ID: id, Status: StatusCached, History: stored})
		return
	}
	status, progress, hist, errMsg := r.snapshot()
	if hist != nil {
		progress = nil // history carries the same stats; don't send both
	}
	s.writeRun(w, req, http.StatusOK, runResponse{ID: id, Status: status, Progress: progress, History: hist, Error: errMsg})
}

// handleEvents streams per-round progress as Server-Sent Events: one
// "round" event per RoundStat (replayed from the start for late joiners),
// then a terminal "done" event carrying the final status.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	r, stored, ok, err := s.lookup(req.Context(), id)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %s", id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s.sm.sseRuns.Inc()
	defer s.sm.sseRuns.Dec()

	emit := func(event string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return // never send an event with an empty payload
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}

	if r == nil { // artifact with no live record: replay and finish
		for _, st := range stored.Stats {
			emit("round", st)
		}
		emit("done", map[string]string{"status": StatusCached})
		return
	}

	replay, ch, terminal := r.subscribe()
	defer r.unsubscribe(ch)
	for _, st := range replay {
		emit("round", st)
	}
	for !terminal {
		select {
		case st := <-ch:
			emit("round", st)
		case <-r.done:
			// Drain events that raced with completion, then terminate.
			for {
				select {
				case st := <-ch:
					emit("round", st)
				default:
					terminal = true
				}
				if terminal {
					break
				}
			}
		case <-req.Context().Done():
			return
		}
	}
	status, _, _, errMsg := r.snapshot()
	final := map[string]string{"status": status}
	if errMsg != "" {
		final["error"] = errMsg
	}
	emit("done", final)
}

// registryResponse lists what can be submitted: the paper's registered
// experiments plus the method and dataset registries specs draw from.
type registryResponse struct {
	Experiments []experimentInfo `json:"experiments"`
	Methods     []string         `json:"methods"`
	Datasets    []string         `json:"datasets"`
}

type experimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, req *http.Request) {
	resp := registryResponse{Methods: methods.Names(), Datasets: data.Names()}
	for _, e := range experiments.All() {
		resp.Experiments = append(resp.Experiments, experimentInfo{ID: e.ID, Title: e.Title})
	}
	writeJSON(w, http.StatusOK, resp)
}
