package nn

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fedwcm/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	src := NewMLP(5, 6, []int{8}, 3, true)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewMLP(99, 6, []int{8}, 3, true) // different init
	if tensor.L2Dist(src.Vector(), dst.Vector()) == 0 {
		t.Fatal("test setup: networks should differ before load")
	}
	if err := LoadCheckpoint(&buf, dst); err != nil {
		t.Fatal(err)
	}
	if tensor.L2Dist(src.Vector(), dst.Vector()) != 0 {
		t.Fatal("checkpoint roundtrip drifted")
	}
}

func TestCheckpointRejectsArchMismatch(t *testing.T) {
	src := NewMLP(1, 6, []int{8}, 3, false)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	wrong := NewMLP(1, 6, []int{9}, 3, false)
	err := LoadCheckpoint(&buf, wrong)
	if err == nil {
		t.Fatal("size mismatch must be rejected")
	}
	if !strings.Contains(err.Error(), "values") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckpointRejectsParamCountMismatch(t *testing.T) {
	src := NewMLP(1, 6, []int{8}, 3, false)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, src); err != nil {
		t.Fatal(err)
	}
	wrong := NewMLP(1, 6, []int{8, 4}, 3, false)
	if err := LoadCheckpoint(&buf, wrong); err == nil {
		t.Fatal("param count mismatch must be rejected")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	net := NewMLP(1, 4, []int{4}, 2, false)
	if err := LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all")), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestCheckpointFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.fwcm")
	src := NewSoftmaxRegression(7, 5, 3)
	if err := SaveCheckpointFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := NewSoftmaxRegression(8, 5, 3)
	if err := LoadCheckpointFile(path, dst); err != nil {
		t.Fatal(err)
	}
	if tensor.L2Dist(src.Vector(), dst.Vector()) != 0 {
		t.Fatal("file roundtrip drifted")
	}
	if err := LoadCheckpointFile(filepath.Join(dir, "missing"), dst); err == nil {
		t.Fatal("missing file must error")
	}
}
