package partition

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarises a partition's quantity and label skew; Figure 11
// reproduces these numbers for the FedGraB-style partition.
type Stats struct {
	Clients       int
	TotalSamples  int
	MinSize       int
	MaxSize       int
	GiniQuantity  float64 // 0 = perfectly equal sizes
	Top10PctShare float64 // share of data held by the largest 10% of clients
	Bottom40Share float64 // share of data held by the smallest 40% of clients
	MeanLabelSkew float64 // mean L1 distance between client mix and global mix
}

// ComputeStats derives Stats from a partition and the global class mix.
func ComputeStats(p *Partition, globalProportions []float64) Stats {
	sizes := p.Sizes()
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	total := 0
	for _, s := range sizes {
		total += s
	}
	st := Stats{Clients: len(sizes), TotalSamples: total}
	if len(sorted) == 0 || total == 0 {
		return st
	}
	st.MinSize = sorted[0]
	st.MaxSize = sorted[len(sorted)-1]
	st.GiniQuantity = gini(sorted)

	top := int(math.Ceil(float64(len(sorted)) * 0.1))
	sumTop := 0
	for _, s := range sorted[len(sorted)-top:] {
		sumTop += s
	}
	st.Top10PctShare = float64(sumTop) / float64(total)

	bottom := int(math.Floor(float64(len(sorted)) * 0.4))
	sumBottom := 0
	for _, s := range sorted[:bottom] {
		sumBottom += s
	}
	st.Bottom40Share = float64(sumBottom) / float64(total)

	props := p.Proportions()
	skew := 0.0
	for _, mix := range props {
		d := 0.0
		for c := range mix {
			d += math.Abs(mix[c] - globalProportions[c])
		}
		skew += d
	}
	st.MeanLabelSkew = skew / float64(len(props))
	return st
}

// gini computes the Gini coefficient of a sorted non-negative size list.
func gini(sorted []int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var cum, weighted float64
	for i, s := range sorted {
		cum += float64(s)
		weighted += float64(i+1) * float64(s)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted)/(float64(n)*cum) - float64(n+1)/float64(n)
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("clients=%d total=%d size=[%d,%d] gini=%.3f top10%%=%.1f%% bottom40%%=%.1f%% labelSkew=%.3f",
		s.Clients, s.TotalSamples, s.MinSize, s.MaxSize, s.GiniQuantity,
		100*s.Top10PctShare, 100*s.Bottom40Share, s.MeanLabelSkew)
}

// Histogram renders a crude text histogram of client sizes (for fig11).
func Histogram(p *Partition, bins int) string {
	sizes := p.Sizes()
	if len(sizes) == 0 || bins <= 0 {
		return ""
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize == 0 {
		return ""
	}
	counts := make([]int, bins)
	for _, s := range sizes {
		b := s * bins / (maxSize + 1)
		counts[b]++
	}
	var sb strings.Builder
	for b, c := range counts {
		lo := b * (maxSize + 1) / bins
		hi := (b+1)*(maxSize+1)/bins - 1
		fmt.Fprintf(&sb, "%5d-%-5d |%s (%d)\n", lo, hi, strings.Repeat("#", c), c)
	}
	return sb.String()
}
