// Package data provides the dataset substrate for the FedWCM reproduction:
// a dense in-memory dataset type, synthetic class-conditional generators
// standing in for Fashion-MNIST / SVHN / CIFAR-10 / CIFAR-100 / ImageNet
// (see DESIGN.md for the substitution argument), the exponential long-tail
// class profile parameterised by the imbalance factor IF, and minibatch
// samplers including the class-balanced sampler used as a baseline.
package data

import (
	"fmt"

	"fedwcm/internal/tensor"
)

// Dataset is an in-memory labelled dataset. X rows are flat feature vectors;
// image datasets use channel-outer flattening and record their geometry.
type Dataset struct {
	X       *tensor.Dense
	Y       []int
	Classes int
	// Image geometry; zero for pure feature datasets.
	Chans, H, W int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.R }

// Dim returns the flat feature width.
func (d *Dataset) Dim() int { return d.X.C }

// ClassCounts tallies samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// ClassProportions returns the normalised class distribution.
func (d *Dataset) ClassProportions() []float64 {
	counts := d.ClassCounts()
	out := make([]float64, len(counts))
	n := float64(d.Len())
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / n
	}
	return out
}

// Subset copies the given rows into a new Dataset.
func (d *Dataset) Subset(idx []int) *Dataset {
	x := tensor.NewDense(len(idx), d.Dim())
	y := make([]int, len(idx))
	for i, j := range idx {
		copy(x.Row(i), d.X.Row(j))
		y[i] = d.Y[j]
	}
	return &Dataset{X: x, Y: y, Classes: d.Classes, Chans: d.Chans, H: d.H, W: d.W}
}

// Gather copies rows idx into a batch matrix and label slice, reusing the
// provided buffers when they are large enough.
func (d *Dataset) Gather(idx []int, x *tensor.Dense, y []int) (*tensor.Dense, []int) {
	n := len(idx)
	if x == nil || cap(x.Data) < n*d.Dim() {
		x = tensor.NewDense(n, d.Dim())
	} else {
		x = tensor.FromSlice(n, d.Dim(), x.Data[:n*d.Dim()])
	}
	if cap(y) < n {
		y = make([]int, n)
	}
	y = y[:n]
	for i, j := range idx {
		copy(x.Row(i), d.X.Row(j))
		y[i] = d.Y[j]
	}
	return x, y
}

// IndicesByClass groups sample indices by label.
func (d *Dataset) IndicesByClass() [][]int {
	out := make([][]int, d.Classes)
	for i, y := range d.Y {
		out[y] = append(out[y], i)
	}
	return out
}

// Validate checks internal consistency; it is used by tests and when
// loading externally constructed datasets.
func (d *Dataset) Validate() error {
	if d.X.R != len(d.Y) {
		return fmt.Errorf("data: %d rows but %d labels", d.X.R, len(d.Y))
	}
	if d.Classes <= 0 {
		return fmt.Errorf("data: non-positive class count %d", d.Classes)
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("data: label %d out of range at row %d", y, i)
		}
	}
	if d.Chans != 0 && d.Chans*d.H*d.W != d.Dim() {
		return fmt.Errorf("data: image geometry %dx%dx%d does not match dim %d", d.Chans, d.H, d.W, d.Dim())
	}
	return nil
}

// Concat appends the rows of other (same dim/classes) to d, returning a new
// dataset.
func Concat(a, b *Dataset) *Dataset {
	if a.Dim() != b.Dim() || a.Classes != b.Classes {
		panic("data: Concat shape mismatch")
	}
	x := tensor.NewDense(a.Len()+b.Len(), a.Dim())
	copy(x.Data[:len(a.X.Data)], a.X.Data)
	copy(x.Data[len(a.X.Data):], b.X.Data)
	y := make([]int, 0, a.Len()+b.Len())
	y = append(y, a.Y...)
	y = append(y, b.Y...)
	return &Dataset{X: x, Y: y, Classes: a.Classes, Chans: a.Chans, H: a.H, W: a.W}
}
