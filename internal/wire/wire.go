// Package wire implements the compact binary transport encoding used to
// move round histories and update vectors between dispatch workers, the
// coordinator and the serving layer.
//
// Design:
//
//   - Every message is an envelope: 4-byte magic "FWR1", a kind byte, then
//     the payload. Unknown magic or kind fails decoding loudly, so HTTP
//     handlers can sniff the Content-Type (wire.ContentType) and fall back
//     to JSON for old peers.
//
//   - Float64 series (accuracy, loss, per-class accuracy, metric values)
//     are XOR-delta encoded: each value's IEEE-754 bits are XORed with the
//     previous value in its column and the difference is written as a
//     uvarint after folding out trailing zero nibbles. Slowly-moving series
//     (the common case round over round) collapse to one or two bytes per
//     value, and the roundtrip is bit-for-bit lossless — histories decoded
//     at the store boundary are byte-identical to what the worker computed,
//     so content addresses and stored artifacts are unchanged by the
//     transport.
//
//   - Integer series (round numbers, staleness histograms) are zigzag
//     varint deltas against the previous row.
//
//   - Update vectors can additionally be quantized (see quant.go): float16
//     with relative error ≤ 2⁻¹¹, or int8 with a per-block-of-64 absmax
//     scale and absolute error ≤ scale/2. Quantized forms are only used
//     for monitoring-path payloads (heartbeat progress relays), never for
//     results that reach the store.
//
// See DESIGN.md "Kernels & wire format" and docs/API.md for the protocol
// surface.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ContentType is the MIME type negotiating this encoding over HTTP.
const ContentType = "application/x-fedwcm-wire"

var magic = [4]byte{'F', 'W', 'R', '1'}

// Message kinds (the byte after the magic).
const (
	kindResult    byte = 1 // worker result upload: history + error string
	kindStats     byte = 2 // heartbeat progress relay: a batch of RoundStats
	kindRunStatus byte = 3 // serve run status: id/status/progress/history
)

var errTruncated = errors.New("wire: truncated message")

// enc accumulates an encoded message.
type enc struct{ b []byte }

func (e *enc) u(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) z(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte1(v byte) { e.b = append(e.b, v) }

func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

// fcol is the per-column state of a float series: the previous value's bits
// (for XOR and repeat detection) and the last rational numerator and
// denominator. The engine's accuracy columns divide a slowly-moving correct
// count by a fixed test-set size, so the denominator is paid once per
// column and the numerator as a small delta per value.
type fcol struct {
	bits, den uint64
	num       int64
}

// fx writes one float64 of a column. Four lossless encodings, cheapest
// wins:
//
//   - code 0: bits unchanged from the column's previous value (1 byte);
//   - code 1: rational — zigzag numerator and uvarint denominator follow,
//     used when float64(num)/float64(den) reproduces v bit-exactly (the
//     engine's accuracy columns are correct/total quotients, so this
//     collapses them to 3–5 bytes where a raw mantissa needs 9);
//   - code 2: rational reusing the column's previous denominator, with the
//     numerator zigzag-delta'd against the column's previous numerator (the
//     steady state for accuracy columns: 2 bytes per value);
//   - otherwise XOR vs the previous bits with trailing zero nibbles folded:
//     uvarint (xor>>4f)<<4 | f for the largest f ≤ 14 with 4f trailing zero
//     bits, or escape code 15 followed by 8 raw little-endian bytes when the
//     top nibble is occupied and nothing folds.
func (e *enc) fx(c *fcol, v float64) {
	b := math.Float64bits(v)
	x := b ^ c.bits
	c.bits = b
	if x == 0 {
		e.u(0)
		return
	}
	f := uint64(bits.TrailingZeros64(x)) / 4
	if f > 14 {
		f = 14
	}
	escape := uint64(bits.LeadingZeros64(x))+4*f < 4
	xorCost := 9
	if !escape {
		xorCost = uvlen((x >> (4 * f)) << 4)
	}
	if xorCost > 2 {
		// The column's sticky denominator first: IEEE division is correctly
		// rounded, so k/200 matches even when the reduced form would be 9/20.
		if num, ok := ratWithDen(v, c.den); ok {
			dn := num - c.num
			zd := uint64(dn<<1) ^ uint64(dn>>63)
			if 1+uvlen(zd) < xorCost {
				e.u(2)
				e.z(dn)
				c.num = num
				return
			}
		}
		if num, den, ok := ratApprox(v); ok {
			zn := uint64(num<<1) ^ uint64(num>>63)
			if 1+uvlen(zn)+uvlen(den) < xorCost {
				e.u(1)
				e.z(num)
				e.u(den)
				c.den, c.num = den, num
				return
			}
		}
	}
	if escape {
		e.u(15)
		e.b = binary.LittleEndian.AppendUint64(e.b, x)
		return
	}
	e.u((x>>(4*f))<<4 | f)
}

// uvlen is the encoded size of a uvarint.
func uvlen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// ratWithDen checks whether v is exactly num/den for the given denominator
// and some |num| ≤ 2²⁰.
func ratWithDen(v float64, den uint64) (int64, bool) {
	if den == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	n := math.Round(v * float64(den))
	if math.Abs(n) > 1<<20 || n == 0 {
		return 0, false
	}
	num := int64(n)
	if float64(num)/float64(den) != v {
		return 0, false
	}
	return num, true
}

// ratApprox finds a small rational num/den (den ≤ 4096, |num| ≤ 2²⁰) whose
// float64 quotient is bit-identical to v, walking the continued-fraction
// convergents of |v|. Any rational that rounds to v within the den bound is
// a convergent (|v−p/q| ≤ ulp/2 < 1/(2q²) for these magnitudes), so the
// walk is exhaustive.
func ratApprox(v float64) (num int64, den uint64, ok bool) {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, 0, false
	}
	av := math.Abs(v)
	if av > 1<<20 || av < 1.0/(2<<12) {
		return 0, 0, false
	}
	var p0, q0, p1, q1 uint64 = 0, 1, 1, 0
	x := av
	for i := 0; i < 48; i++ {
		a := math.Floor(x)
		if a > 1<<20 {
			return 0, 0, false
		}
		p2 := uint64(a)*p1 + p0
		q2 := uint64(a)*q1 + q0
		if q2 > 4096 || p2 > 1<<20 {
			return 0, 0, false
		}
		if float64(p2)/float64(q2) == av {
			num = int64(p2)
			if v < 0 {
				num = -num
			}
			return num, q2, true
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := x - a
		if frac == 0 {
			return 0, 0, false
		}
		x = 1 / frac
	}
	return 0, 0, false
}

// dec consumes an encoded message; errors are sticky and reads after an
// error return zero values.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) z() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte1() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(errTruncated)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.fail(errTruncated)
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.u()
	if n > uint64(len(d.b)) {
		d.fail(errTruncated)
		return ""
	}
	return string(d.take(int(n)))
}

// length reads a count that is subsequently used to allocate; it is bounded
// by the remaining input so corrupt messages cannot demand huge buffers.
func (d *dec) length() int {
	n := d.u()
	if n > uint64(len(d.b))+1 {
		d.fail(fmt.Errorf("wire: length %d exceeds remaining input %d", n, len(d.b)))
		return 0
	}
	return int(n)
}

func (d *dec) fx(c *fcol) float64 {
	u := d.u()
	var x uint64
	switch {
	case u == 0:
		// unchanged
	case u == 1 || u == 2:
		var num int64
		den := c.den
		if u == 1 {
			num = d.z()
			den = d.u()
		} else {
			num = c.num + d.z()
		}
		if den == 0 {
			d.fail(errors.New("wire: rational with zero denominator"))
			return 0
		}
		c.den, c.num = den, num
		v := float64(num) / float64(den)
		c.bits = math.Float64bits(v)
		return v
	case u == 15:
		raw := d.take(8)
		if d.err == nil {
			x = binary.LittleEndian.Uint64(raw)
		}
	case u < 15:
		d.fail(fmt.Errorf("wire: reserved float delta code %d", u))
	default:
		f := u & 15
		if f > 14 {
			d.fail(fmt.Errorf("wire: invalid float fold %d", f))
			return 0
		}
		x = (u >> 4) << (4 * f)
	}
	c.bits ^= x
	return math.Float64frombits(c.bits)
}

// envelope writes the message header.
func (e *enc) envelope(kind byte) {
	e.b = append(e.b, magic[:]...)
	e.byte1(kind)
}

// openEnvelope validates the header and returns the payload decoder.
func openEnvelope(p []byte, wantKind byte) (*dec, error) {
	if len(p) < 5 {
		return nil, errTruncated
	}
	if [4]byte(p[:4]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q", p[:4])
	}
	if p[4] != wantKind {
		return nil, fmt.Errorf("wire: kind %d, want %d", p[4], wantKind)
	}
	return &dec{b: p[5:]}, nil
}
