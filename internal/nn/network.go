package nn

import (
	"fedwcm/internal/tensor"
)

// Network is a Sequential with the bookkeeping the federated engine needs:
// flat parameter-vector access and classifier metadata.
type Network struct {
	*Sequential
	InDim   int
	Classes int

	params []*Param // cached Params() result (layer param sets are stable)
}

// WrapNetwork builds a Network from layers plus metadata.
func WrapNetwork(inDim, classes int, layers ...Layer) *Network {
	n := &Network{Sequential: NewSequential(layers...), InDim: inDim, Classes: classes}
	n.params = n.Sequential.Params()
	return n
}

// Params returns the cached flat parameter list.
func (n *Network) Params() []*Param { return n.params }

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int { return ParamSize(n.params) }

// Vector copies all parameters into a fresh flat vector.
func (n *Network) Vector() []float64 {
	return FlattenParams(n.params, make([]float64, n.NumParams()))
}

// VectorInto copies all parameters into dst.
func (n *Network) VectorInto(dst []float64) { FlattenParams(n.params, dst) }

// SetVector loads all parameters from a flat vector.
func (n *Network) SetVector(v []float64) { UnflattenParams(n.params, v) }

// DeltaInto computes dst = ref - params directly from the parameter
// segments, fusing VectorInto and the subtraction into one pass with no
// intermediate flat copy. dst and ref are flat vectors over all parameters.
func (n *Network) DeltaInto(dst, ref []float64) {
	if len(dst) != n.NumParams() || len(ref) != n.NumParams() {
		panic("nn: DeltaInto length mismatch")
	}
	off := 0
	for _, p := range n.params {
		for i, v := range p.Data {
			dst[off+i] = ref[off+i] - v
		}
		off += len(p.Data)
	}
}

// GradVector copies all gradients into a fresh flat vector.
func (n *Network) GradVector() []float64 {
	return FlattenGrads(n.params, make([]float64, n.NumParams()))
}

// GradVectorInto copies all gradients into dst.
func (n *Network) GradVectorInto(dst []float64) { FlattenGrads(n.params, dst) }

// ZeroGrad clears every gradient accumulator.
func (n *Network) ZeroGrad() {
	for _, p := range n.params {
		p.ZeroGrad()
	}
}

// Step applies params -= lr·grad to learnable parameters (Stat params are
// skipped; their values evolve inside Forward).
func (n *Network) Step(lr float64) {
	for _, p := range n.params {
		if p.Stat {
			continue
		}
		tensor.Axpy(p.Data, -lr, p.Grad)
	}
}

// StepVec applies params -= lr·dir where dir is a flat vector over all
// parameters (Stat segments included; pass zeros there to leave them alone).
func (n *Network) StepVec(lr float64, dir []float64) {
	if len(dir) != n.NumParams() {
		panic("nn: StepVec length mismatch")
	}
	off := 0
	for _, p := range n.params {
		if !p.Stat {
			tensor.Axpy(p.Data, -lr, dir[off:off+len(p.Data)])
		}
		off += len(p.Data)
	}
}

// StatMask returns a boolean vector marking which flat-vector positions
// belong to Stat (non-learnable) parameters.
func (n *Network) StatMask() []bool {
	mask := make([]bool, n.NumParams())
	off := 0
	for _, p := range n.params {
		if p.Stat {
			for i := 0; i < len(p.Data); i++ {
				mask[off+i] = true
			}
		}
		off += len(p.Data)
	}
	return mask
}

// Predict returns the argmax class for each row of x (inference mode).
func (n *Network) Predict(x *tensor.Dense) []int {
	return n.PredictInto(nil, x)
}

// PredictInto is Predict writing into dst (grown as needed), so repeated
// evaluation loops stop allocating a fresh prediction slice per chunk.
func (n *Network) PredictInto(dst []int, x *tensor.Dense) []int {
	logits := n.Forward(x, false)
	if cap(dst) < logits.R {
		dst = make([]int, logits.R)
	}
	dst = dst[:logits.R]
	for i := 0; i < logits.R; i++ {
		dst[i] = tensor.ArgMax(logits.Row(i))
	}
	return dst
}
