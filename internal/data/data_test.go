package data

import (
	"math"
	"testing"
	"testing/quick"

	"fedwcm/internal/tensor"
	"fedwcm/internal/xrand"
)

func TestLongTailCountsShape(t *testing.T) {
	counts := LongTailCounts(1000, 10, 0.1)
	if counts[0] != 1000 {
		t.Fatalf("head count %d, want 1000", counts[0])
	}
	if counts[9] != 100 {
		t.Fatalf("tail count %d, want 100", counts[9])
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("counts must be non-increasing: %v", counts)
		}
	}
}

func TestLongTailCountsBalanced(t *testing.T) {
	counts := LongTailCounts(500, 7, 1)
	for _, c := range counts {
		if c != 500 {
			t.Fatalf("IF=1 must be balanced, got %v", counts)
		}
	}
}

func TestLongTailCountsFloor(t *testing.T) {
	counts := LongTailCounts(50, 10, 0.01)
	for _, c := range counts {
		if c < 1 {
			t.Fatalf("classes must keep at least one sample: %v", counts)
		}
	}
}

func TestImbalanceFactorRoundTrip(t *testing.T) {
	f := func(ifRaw uint8) bool {
		imb := 0.01 + float64(ifRaw%100)/100
		if imb > 1 {
			imb = 1
		}
		counts := LongTailCounts(10000, 10, imb)
		got := ImbalanceFactor(counts)
		return math.Abs(got-imb) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLongTailPanics(t *testing.T) {
	for _, bad := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LongTailCounts should panic for IF=%v", bad)
				}
			}()
			LongTailCounts(10, 5, bad)
		}()
	}
}

func TestL1DeviationAndTarget(t *testing.T) {
	u := UniformTarget(4)
	if L1Deviation(u, u) != 0 {
		t.Fatal("self deviation must be 0")
	}
	p := []float64{1, 0, 0, 0}
	// |1-0.25| + 3·|0-0.25| = 1.5
	if d := L1Deviation(p, u); math.Abs(d-1.5) > 1e-12 {
		t.Fatalf("L1Deviation = %v, want 1.5", d)
	}
}

func TestGaussianGenerateCounts(t *testing.T) {
	spec := GaussianSpec{Classes: 3, Dim: 8, Sep: 2, Noise: 1}
	counts := []int{5, 3, 7}
	ds := spec.Generate(1, 1, counts)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	got := ds.ClassCounts()
	for c, want := range counts {
		if got[c] != want {
			t.Fatalf("class %d count %d, want %d", c, got[c], want)
		}
	}
}

func TestGaussianDeterminism(t *testing.T) {
	spec := GaussianSpec{Classes: 2, Dim: 4, Sep: 2, Noise: 1}
	a := spec.Generate(9, 1, []int{3, 3})
	b := spec.Generate(9, 1, []int{3, 3})
	if !tensor.Equal(a.X, b.X, 0) {
		t.Fatal("same seed must generate identical data")
	}
	c := spec.Generate(10, 1, []int{3, 3})
	if tensor.Equal(a.X, c.X, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestGaussianSplitsShareStructureButNotNoise(t *testing.T) {
	spec := GaussianSpec{Classes: 2, Dim: 16, Sep: 5, Noise: 0.1}
	train := spec.Generate(3, 1, []int{50, 50})
	test := spec.Generate(3, 2, []int{50, 50})
	if tensor.Equal(train.X, test.X, 1e-9) {
		t.Fatal("train and test streams must differ")
	}
	// but class means should be close (shared prototypes)
	meanOf := func(d *Dataset, cls int) []float64 {
		m := make([]float64, d.Dim())
		n := 0
		for i, y := range d.Y {
			if y == cls {
				tensor.AddVec(m, d.X.Row(i))
				n++
			}
		}
		tensor.Scale(m, 1/float64(n))
		return m
	}
	for cls := 0; cls < 2; cls++ {
		d := tensor.L2Dist(meanOf(train, cls), meanOf(test, cls))
		if d > 0.5 {
			t.Fatalf("class %d prototype drift %v between splits", cls, d)
		}
	}
}

func TestGaussianSeparationIsLearnable(t *testing.T) {
	// Nearest-prototype classification on well-separated data should be
	// nearly perfect; this guards against degenerate generators.
	spec := GaussianSpec{Classes: 4, Dim: 16, Sep: 6, Noise: 0.5}
	train := spec.Generate(5, 1, UniformCounts(50, 4))
	test := spec.Generate(5, 2, UniformCounts(30, 4))
	centroids := make([][]float64, 4)
	for c := range centroids {
		centroids[c] = make([]float64, train.Dim())
	}
	counts := make([]float64, 4)
	for i, y := range train.Y {
		tensor.AddVec(centroids[y], train.X.Row(i))
		counts[y]++
	}
	for c := range centroids {
		tensor.Scale(centroids[c], 1/counts[c])
	}
	correct := 0
	for i, y := range test.Y {
		best, bi := math.Inf(1), -1
		for c := range centroids {
			d := tensor.L2Dist(test.X.Row(i), centroids[c])
			if d < best {
				best, bi = d, c
			}
		}
		if bi == y {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.95 {
		t.Fatalf("nearest-centroid accuracy %v on separable data", acc)
	}
}

func TestImageGenerate(t *testing.T) {
	spec := ImageSpec{Classes: 3, Chans: 2, H: 6, W: 5, Contrast: 1, Noise: 0.2}
	ds := spec.Generate(7, 1, []int{4, 4, 4})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != 2*6*5 {
		t.Fatalf("image dim %d", ds.Dim())
	}
	if ds.Chans != 2 || ds.H != 6 || ds.W != 5 {
		t.Fatal("geometry not recorded")
	}
}

func TestSubsetAndGather(t *testing.T) {
	spec := GaussianSpec{Classes: 2, Dim: 3, Sep: 1, Noise: 1}
	ds := spec.Generate(11, 1, []int{4, 4})
	sub := ds.Subset([]int{1, 5, 7})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if tensor.L2Dist(sub.X.Row(0), ds.X.Row(1)) != 0 {
		t.Fatal("subset row mismatch")
	}
	x, y := ds.Gather([]int{0, 2}, nil, nil)
	if x.R != 2 || y[0] != ds.Y[0] || y[1] != ds.Y[2] {
		t.Fatal("gather mismatch")
	}
	// reuse path
	x2, _ := ds.Gather([]int{3}, x, y)
	if x2.R != 1 || tensor.L2Dist(x2.Row(0), ds.X.Row(3)) != 0 {
		t.Fatal("gather reuse mismatch")
	}
}

func TestIndicesByClass(t *testing.T) {
	ds := &Dataset{X: tensor.NewDense(5, 1), Y: []int{0, 1, 0, 2, 1}, Classes: 3}
	byc := ds.IndicesByClass()
	if len(byc[0]) != 2 || len(byc[1]) != 2 || len(byc[2]) != 1 {
		t.Fatalf("IndicesByClass got %v", byc)
	}
	if byc[0][0] != 0 || byc[0][1] != 2 {
		t.Fatalf("class 0 indices %v", byc[0])
	}
}

func TestConcat(t *testing.T) {
	spec := GaussianSpec{Classes: 2, Dim: 3, Sep: 1, Noise: 1}
	a := spec.Generate(1, 1, []int{2, 2})
	b := spec.Generate(1, 2, []int{1, 1})
	c := Concat(a, b)
	if c.Len() != 6 {
		t.Fatalf("concat len %d", c.Len())
	}
	if tensor.L2Dist(c.X.Row(4), b.X.Row(0)) != 0 {
		t.Fatal("concat rows misplaced")
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Dim() <= 0 || s.Classes <= 0 {
			t.Fatalf("%s: bad spec", name)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestSpecMakeProfiles(t *testing.T) {
	s, err := Lookup("cifar10-syn")
	if err != nil {
		t.Fatal(err)
	}
	train, test := s.Make(1, 0.1)
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ImbalanceFactor(train.ClassCounts()); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("train imbalance %v, want 0.1", got)
	}
	if got := ImbalanceFactor(test.ClassCounts()); got != 1 {
		t.Fatalf("test must be balanced, got IF=%v", got)
	}
}

func TestMakeScaledShrinks(t *testing.T) {
	s, _ := Lookup("cifar10-syn")
	full, _ := s.Make(1, 0.5)
	small, smallTest := s.MakeScaled(1, 0.5, 0.2)
	if small.Len() >= full.Len()/3 {
		t.Fatalf("scaled train %d not much smaller than %d", small.Len(), full.Len())
	}
	if got := ImbalanceFactor(small.ClassCounts()); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("scaled imbalance %v, want ~0.5", got)
	}
	if smallTest.Len() == 0 {
		t.Fatal("scaled test empty")
	}
}

func TestShuffleSamplerCoversEpoch(t *testing.T) {
	s := NewShuffleSampler(xrand.New(1), 10, 3)
	if s.BatchesPerEpoch() != 4 {
		t.Fatalf("BatchesPerEpoch = %d, want 4", s.BatchesPerEpoch())
	}
	seen := map[int]int{}
	for b := 0; b < s.BatchesPerEpoch(); b++ {
		for _, i := range s.NextBatch() {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("epoch covered %d/10 samples", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d seen %d times in one epoch", i, c)
		}
	}
}

func TestShuffleSamplerReshuffles(t *testing.T) {
	s := NewShuffleSampler(xrand.New(2), 100, 100)
	first := append([]int(nil), s.NextBatch()...)
	second := s.NextBatch()
	diff := 0
	for i := range first {
		if first[i] != second[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("epochs should be differently shuffled")
	}
}

func TestBalancedSamplerOversamplesRareClasses(t *testing.T) {
	// shard: 90 of class 0, 10 of class 1
	labels := make([]int, 100)
	for i := 90; i < 100; i++ {
		labels[i] = 1
	}
	s := NewBalancedSampler(xrand.New(3), labels, 2, 20)
	counts := [2]int{}
	for b := 0; b < 200; b++ {
		for _, pos := range s.NextBatch() {
			counts[labels[pos]]++
		}
	}
	ratio := float64(counts[1]) / float64(counts[0]+counts[1])
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("balanced sampler class-1 share %v, want ~0.5", ratio)
	}
}

func TestBalancedSamplerSkipsAbsentClasses(t *testing.T) {
	labels := []int{2, 2, 2} // only class 2 present out of 5
	s := NewBalancedSampler(xrand.New(4), labels, 5, 2)
	for b := 0; b < 10; b++ {
		for _, pos := range s.NextBatch() {
			if labels[pos] != 2 {
				t.Fatal("sampled an absent class")
			}
		}
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	ds := &Dataset{X: tensor.NewDense(2, 1), Y: []int{0, 5}, Classes: 3}
	if ds.Validate() == nil {
		t.Fatal("Validate should reject out-of-range labels")
	}
}
