package partition

import (
	"testing"

	"fedwcm/internal/data"
	"fedwcm/internal/xrand"
)

// TestPartitionProperties drives both strategies over randomly drawn
// (β, IF, clients, seed) configurations and asserts the structural
// invariants every consumer of a Partition relies on:
//
//   - client index sets are pairwise disjoint and cover the dataset
//     (Validate), except FedGraBStyle which may leave indices unassigned
//     only via its guarantee-one-sample donor rule — it still must never
//     duplicate or invent indices;
//   - Counts[k][c] agrees exactly with the labels of ClientIndices[k]
//     under Train.Y (the label views fl.NewEnv derives depend on this);
//   - every index is in range and class counts sum to the client size.
func TestPartitionProperties(t *testing.T) {
	rng := xrand.New(0xbeef)
	spec := data.GaussianSpec{Classes: 7, Dim: 6, Sep: 2, Noise: 1}
	for trial := 0; trial < 40; trial++ {
		beta := 0.05 + 5*rng.Float64()
		imbalance := 0.02 + 0.98*rng.Float64()
		clients := 1 + rng.Intn(30)
		seed := rng.Uint64()
		head := 40 + rng.Intn(120)

		counts := data.LongTailCounts(head, spec.Classes, imbalance)
		ds := spec.Generate(seed, 1, counts)
		n := ds.Len()

		for _, tc := range []struct {
			name string
			make func(*xrand.RNG, *data.Dataset, int, float64) *Partition
		}{
			{"equal", EqualQuantity},
			{"fedgrab", FedGraBStyle},
		} {
			part := tc.make(xrand.New(seed+1), ds, clients, beta)
			if part.NumClients() != clients {
				t.Fatalf("%s trial %d: %d clients requested, %d produced", tc.name, trial, clients, part.NumClients())
			}
			// Disjoint cover of [0, n).
			if err := part.Validate(n); err != nil {
				t.Fatalf("%s trial %d (beta=%.3f if=%.3f clients=%d seed=%d): %v",
					tc.name, trial, beta, imbalance, clients, seed, err)
			}
			// Counts agree with Train.Y exactly.
			for k, idx := range part.ClientIndices {
				recount := make([]int, ds.Classes)
				for _, gi := range idx {
					recount[ds.Y[gi]]++
				}
				total := 0
				for c := range recount {
					if part.Counts[k][c] != recount[c] {
						t.Fatalf("%s trial %d: client %d Counts[%d]=%d, recount %d",
							tc.name, trial, k, c, part.Counts[k][c], recount[c])
					}
					total += recount[c]
				}
				if total != len(idx) {
					t.Fatalf("%s trial %d: client %d counts sum %d != %d indices",
						tc.name, trial, k, total, len(idx))
				}
			}
			// EqualQuantity promises near-equal sizes (±1).
			if tc.name == "equal" {
				lo, hi := n, 0
				for _, s := range part.Sizes() {
					if s < lo {
						lo = s
					}
					if s > hi {
						hi = s
					}
				}
				if hi-lo > 1 {
					t.Fatalf("equal trial %d: sizes spread %d..%d", trial, lo, hi)
				}
			}
		}
	}
}

// TestPartitionDeterminism: the same (dataset, seed, β, clients) must yield
// the identical partition — environment caching and drift repartitions
// depend on it.
func TestPartitionDeterminism(t *testing.T) {
	spec := data.GaussianSpec{Classes: 5, Dim: 4, Sep: 2, Noise: 1}
	ds := spec.Generate(42, 1, data.LongTailCounts(80, 5, 0.2))
	for _, mk := range []func(*xrand.RNG, *data.Dataset, int, float64) *Partition{EqualQuantity, FedGraBStyle} {
		a := mk(xrand.New(99), ds, 9, 0.3)
		b := mk(xrand.New(99), ds, 9, 0.3)
		for k := range a.ClientIndices {
			if len(a.ClientIndices[k]) != len(b.ClientIndices[k]) {
				t.Fatal("partition not deterministic: sizes differ")
			}
			for i := range a.ClientIndices[k] {
				if a.ClientIndices[k][i] != b.ClientIndices[k][i] {
					t.Fatal("partition not deterministic: indices differ")
				}
			}
		}
	}
}
