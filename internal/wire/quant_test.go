package wire

import (
	"math"
	"math/rand"
	"testing"
)

// TestF16Exhaustive checks the half-precision conversion against every one
// of the 65536 bit patterns: F16Value must be exact (every half fits in a
// float64) and F16Bits must return the identical pattern back for all
// non-NaN values (NaN collapses to the canonical quiet NaN).
func TestF16Exhaustive(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := uint16(i)
		v := F16Value(h)
		back := F16Bits(v)
		if math.IsNaN(v) {
			if back&0x7C00 != 0x7C00 || back&0x3FF == 0 {
				t.Fatalf("h=%#04x: NaN must map to a NaN pattern, got %#04x", h, back)
			}
			continue
		}
		// Normalize -0: 0x8000 and 0x0000 are distinct patterns but both
		// must roundtrip to themselves.
		if back != h {
			t.Fatalf("h=%#04x (%v) roundtripped to %#04x", h, v, back)
		}
	}
}

// TestF16RoundNearestEven spot-checks the rounding mode on hand-picked
// midpoints.
func TestF16RoundNearestEven(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3C00},
		{-2, 0xC000},
		{65504, 0x7BFF},             // largest finite half
		{65520, 0x7C00},             // halfway to overflow rounds to Inf (even)
		{65536, 0x7C00},             // overflow → Inf
		{1 + 0x1p-11, 0x3C00},       // midpoint between 1 and 1+2⁻¹⁰ → even (1)
		{1 + 3*0x1p-11, 0x3C02},     // midpoint above odd → rounds up to even
		{0x1p-14, 0x0400},           // smallest normal
		{0x1p-24, 0x0001},           // smallest subnormal
		{0x1p-25, 0x0000},           // halfway below → ties to even (zero)
		{0x1p-25 + 0x1p-30, 0x0001}, // just above the tie → up
		{math.Inf(1), 0x7C00},
		{math.Inf(-1), 0xFC00},
	}
	for _, c := range cases {
		if got := F16Bits(c.in); got != c.want {
			t.Errorf("F16Bits(%v) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

// TestF16ErrorBound: random finite inputs stay within the documented
// relative (normal range) or absolute (subnormal range) error after a
// roundtrip.
func TestF16ErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 100000; i++ {
		var v float64
		switch i % 3 {
		case 0:
			v = (r.Float64()*2 - 1) * 65504 // full finite half range
		case 1:
			v = (r.Float64()*2 - 1) // the accuracy/weight-delta regime
		default:
			v = (r.Float64()*2 - 1) * 0x1p-14 // subnormal regime
		}
		got := F16Value(F16Bits(v))
		bound := math.Abs(v) * 0x1p-11
		if bound < 0x1p-25 {
			bound = 0x1p-25
		}
		if math.Abs(got-v) > bound {
			t.Fatalf("|f16(%v) - %v| = %v > %v", got, v, math.Abs(got-v), bound)
		}
	}
}

func TestVecF16Roundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 7, 64, 321} {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		p := AppendVecF16([]byte{0xAA}, v) // prefix survives
		got, rest, err := DecodeVecF16(p[1:])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 {
			t.Fatalf("n=%d: %d trailing bytes", n, len(rest))
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range v {
			if want := F16Value(F16Bits(v[i])); !bitsEq(got[i], want) {
				t.Fatalf("n=%d i=%d: %v, want %v", n, i, got[i], want)
			}
		}
	}
	if _, _, err := DecodeVecF16([]byte{200}); err == nil {
		t.Fatal("truncated f16 vector accepted")
	}
}

// TestVecQ8ErrorBound: per-element reconstruction error is ≤ scale/2 where
// scale is that block's absmax/127; all-zero blocks roundtrip exactly.
func TestVecQ8ErrorBound(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for _, n := range []int{0, 1, 63, 64, 65, 640, 1000} {
		v := make([]float64, n)
		for i := range v {
			switch {
			case i/q8Block == 1: // second block all zeros
				v[i] = 0
			case r.Intn(20) == 0: // occasional outlier
				v[i] = r.NormFloat64() * 100
			default:
				v[i] = r.NormFloat64() * 0.01
			}
		}
		p := AppendVecQ8(nil, v)
		got, rest, err := DecodeVecQ8(p)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(rest) != 0 || len(got) != n {
			t.Fatalf("n=%d: len=%d rest=%d", n, len(got), len(rest))
		}
		for lo := 0; lo < n; lo += q8Block {
			hi := lo + q8Block
			if hi > n {
				hi = n
			}
			absmax := 0.0
			for _, x := range v[lo:hi] {
				if a := math.Abs(x); a > absmax {
					absmax = a
				}
			}
			// The stored scale is the float32 rounding of absmax/127; allow
			// that rounding on top of the half-step bound.
			scale := float64(float32(absmax / 127))
			bound := scale/2 + absmax*0x1p-23
			for i := lo; i < hi; i++ {
				if absmax == 0 {
					if got[i] != 0 {
						t.Fatalf("zero block reconstructed %v", got[i])
					}
					continue
				}
				if math.Abs(got[i]-v[i]) > bound {
					t.Fatalf("n=%d i=%d: |%v - %v| > %v (scale %v)", n, i, got[i], v[i], bound, scale)
				}
			}
		}
	}
	if _, _, err := DecodeVecQ8([]byte{70, 0, 0}); err == nil {
		t.Fatal("truncated q8 vector accepted")
	}
}

// BenchmarkQ8Encode tracks the vector quantization cost at model-update
// scale.
func BenchmarkQ8Encode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v := make([]float64, 1<<16)
	for i := range v {
		v[i] = r.NormFloat64() * 0.01
	}
	buf := AppendVecQ8(nil, v)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendVecQ8(buf[:0], v)
	}
}
