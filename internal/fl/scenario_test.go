package fl

import (
	"encoding/json"
	"testing"

	"fedwcm/internal/partition"
	"fedwcm/internal/scenario"
	"fedwcm/internal/xrand"
)

// recordingMethod wraps sgdMethod and records which clients reported and
// how many steps each took, per round.
type recordingMethod struct {
	sgdMethod
	rounds [][]*ClientResult // shallow copies per round
}

func (m *recordingMethod) Aggregate(round int, global []float64, results []*ClientResult) {
	snap := make([]*ClientResult, len(results))
	for i, r := range results {
		c := *r
		snap[i] = &c
	}
	m.rounds = append(m.rounds, snap)
	m.sgdMethod.Aggregate(round, global, results)
}

// TestScenarioStragglersReduceSteps: a straggler scenario must produce
// rounds where some clients report fewer steps than the full local budget,
// never zero, and momentum-free aggregation must still learn.
func TestScenarioStragglersReduceSteps(t *testing.T) {
	cfg := Config{Rounds: 12, SampleClients: 5, LocalEpochs: 3, BatchSize: 20,
		EtaL: 0.2, EtaG: 1, Seed: 11, EvalEvery: 6,
		Scenario: &scenario.Scenario{Straggler: &scenario.Straggler{Prob: 0.8, MinFrac: 0.2, MaxFrac: 0.6}}}
	env := testEnv(11, cfg, 4, 8, 100, 1)
	m := &recordingMethod{}
	hist := Run(env, m)
	// Clients share a size under the equal partition, so the full local
	// budget is the max step count observed; stragglers report less.
	maxSteps, partial := 0, 0
	for _, round := range m.rounds {
		for _, res := range round {
			if res.Steps <= 0 {
				t.Fatalf("straggler produced a zero-step report: %+v", res)
			}
			if res.Steps > maxSteps {
				maxSteps = res.Steps
			}
		}
	}
	for _, round := range m.rounds {
		for _, res := range round {
			if res.Steps < maxSteps {
				partial++
			}
		}
	}
	if partial == 0 {
		t.Fatal("nobody completed partial work at prob=0.8")
	}
	if hist.FinalAcc() < 0.7 {
		t.Fatalf("training should survive stragglers, got %v", hist.FinalAcc())
	}
}

// TestScenarioAvailabilityDropsClients: under churn, some rounds must see
// fewer reports than the cohort size, and the run must stay deterministic
// across worker counts.
func TestScenarioAvailabilityDropsClients(t *testing.T) {
	sc := &scenario.Scenario{Availability: &scenario.Availability{DownProb: 0.4, UpProb: 0.4}}
	mk := func(workers int) (*History, [][]*ClientResult) {
		cfg := Config{Rounds: 15, SampleClients: 5, LocalEpochs: 1, BatchSize: 20,
			EtaL: 0.2, EtaG: 1, Seed: 12, EvalEvery: 5, Workers: workers, Scenario: sc}
		env := testEnv(12, cfg, 4, 8, 100, 1)
		m := &recordingMethod{}
		return Run(env, m), m.rounds
	}
	h1, rounds1 := mk(1)
	h4, _ := mk(4)
	b1, _ := json.Marshal(h1)
	b4, _ := json.Marshal(h4)
	if string(b1) != string(b4) {
		t.Fatal("scenario run must be deterministic across worker counts")
	}
	short := 0
	for _, round := range rounds1 {
		if len(round) < 5 {
			short++
		}
	}
	if short == 0 {
		t.Fatal("churn at down_prob=0.4 never dropped a sampled client")
	}
}

// clientsSpy records the env's client views at every aggregation (the
// round loop replaces them at drift stage boundaries).
type clientsSpy struct {
	sgdMethod
	perRound [][]*Client
}

func (m *clientsSpy) Aggregate(round int, global []float64, results []*ClientResult) {
	m.perRound = append(m.perRound, m.env.Clients)
	m.sgdMethod.Aggregate(round, global, results)
}

// TestScenarioDriftRebuildsClients: under a drift scenario with a
// Repartition hook, the engine must replace the client views at stage
// boundaries (observed mid-run), restore the base views when the run ends
// (an Env reused across runs starts from the same world), and the rebuilt
// views must stay a consistent (sub)partition of the train set shifting
// the effective imbalance toward the target.
func TestScenarioDriftRebuildsClients(t *testing.T) {
	sc := &scenario.Scenario{Drift: &scenario.Drift{ToBeta: 5, ToIF: 0.1, Stages: 3}}
	cfg := Config{Rounds: 9, SampleClients: 4, LocalEpochs: 1, BatchSize: 20,
		EtaL: 0.2, EtaG: 1, Seed: 13, EvalEvery: 3, Scenario: sc}
	env := testEnv(13, cfg, 4, 8, 1.0, 1.0) // balanced base profile
	env.BaseBeta, env.BaseIF = 1.0, 1.0
	env.Repartition = func(seed uint64, beta float64) *partition.Partition {
		return partition.EqualQuantity(xrand.New(seed), env.Train, len(env.Clients), beta)
	}
	before := env.Clients
	spy := &clientsSpy{}
	Run(env, spy)
	if &env.Clients[0] != &before[0] {
		t.Fatal("base client views must be restored after the run")
	}
	if len(spy.perRound) == 0 {
		t.Fatal("no aggregations observed")
	}
	after := spy.perRound[len(spy.perRound)-1]
	if &after[0] == &before[0] {
		t.Fatal("drift never rebuilt the client views")
	}
	if len(after) != len(before) {
		t.Fatalf("drift changed the client count: %d -> %d", len(before), len(after))
	}
	// The final stage's views must be a consistent sub-partition: indices
	// in range, no duplicates, counts matching labels.
	n := env.Train.Len()
	seen := make([]bool, n)
	kept := 0
	for k, c := range after {
		if c.ID != k {
			t.Fatalf("client %d has ID %d", k, c.ID)
		}
		counts := make([]int, env.Train.Classes)
		for i, gi := range c.Indices {
			if gi < 0 || gi >= n {
				t.Fatalf("client %d: index %d out of range", k, gi)
			}
			if seen[gi] {
				t.Fatalf("client %d: index %d assigned twice", k, gi)
			}
			seen[gi] = true
			kept++
			if c.Labels[i] != env.Train.Y[gi] {
				t.Fatalf("client %d: label view disagrees with Train.Y at %d", k, gi)
			}
			counts[env.Train.Y[gi]]++
		}
		for cls, want := range counts {
			if c.ClassCounts[cls] != want {
				t.Fatalf("client %d: ClassCounts[%d]=%d, recount %d", k, cls, c.ClassCounts[cls], want)
			}
		}
	}
	// ToIF=0.1 from a balanced base trims tail classes, so the final stage
	// keeps strictly fewer samples and its global profile is imbalanced.
	if kept >= n {
		t.Fatalf("drift toward IF=0.1 should trim samples: kept %d of %d", kept, n)
	}
	global := make([]int, env.Train.Classes)
	for _, c := range after {
		for cls, cnt := range c.ClassCounts {
			global[cls] += cnt
		}
	}
	if global[0] <= global[len(global)-1] {
		t.Fatalf("drifted profile should be head-heavy, got %v", global)
	}
}

// TestScenarioZeroCanonicalisesAway: a zero-valued scenario must behave —
// and serialize — exactly like no scenario at all.
func TestScenarioZeroCanonicalisesAway(t *testing.T) {
	base := Config{Rounds: 5, SampleClients: 3, Seed: 9, EvalEvery: 5}
	withZero := base
	withZero.Scenario = &scenario.Scenario{}
	a, _ := json.Marshal(base.Defaults())
	b, _ := json.Marshal(withZero.Defaults())
	if string(a) != string(b) {
		t.Fatalf("zero scenario must canonicalise away: %s vs %s", a, b)
	}
	h1 := Run(testEnv(9, base, 3, 6, 100, 1), &sgdMethod{})
	h2 := Run(testEnv(9, withZero, 3, 6, 100, 1), &sgdMethod{})
	j1, _ := json.Marshal(h1)
	j2, _ := json.Marshal(h2)
	if string(j1) != string(j2) {
		t.Fatal("zero scenario must not change the history")
	}
}

// TestShotBucketsAndAccuracy: bucket assignment follows train-count rank
// and ShotAccuracy weights by test totals.
func TestShotBucketsAndAccuracy(t *testing.T) {
	buckets := ShotBuckets([]int{100, 80, 60, 40, 20, 10})
	want := []int{0, 0, 1, 1, 2, 2}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", buckets, want)
		}
	}
	// Rank, not index, decides: permuted counts move the buckets with them.
	buckets = ShotBuckets([]int{10, 100, 40, 80, 20, 60})
	if buckets[1] != 0 || buckets[3] != 0 || buckets[0] != 2 || buckets[4] != 2 {
		t.Fatalf("permuted counts misbucketed: %v", buckets)
	}
	shot := ShotAccuracy(
		[]float64{1, 1, 0.5, 0.5, 0, 0},
		[]int{10, 10, 10, 10, 10, 10},
		[]int{0, 0, 1, 1, 2, 2})
	if shot.Head != 1 || shot.Medium != 0.5 || shot.Tail != 0 {
		t.Fatalf("shot = %+v", shot)
	}
	// Unequal test totals weight classes within a bucket.
	shot = ShotAccuracy([]float64{1, 0}, []int{30, 10}, []int{0, 0})
	if shot.Head != 0.75 {
		t.Fatalf("weighted head = %v, want 0.75", shot.Head)
	}
	if ShotAccuracy(nil, nil, nil) != nil {
		t.Fatal("empty inputs must yield nil")
	}
}

// TestRunReportsShot: every evaluation point of a run carries the shot
// split, and its buckets recombine to the overall accuracy.
func TestRunReportsShot(t *testing.T) {
	cfg := Config{Rounds: 4, SampleClients: 3, LocalEpochs: 1, BatchSize: 20,
		EtaL: 0.2, EtaG: 1, Seed: 21, EvalEvery: 2}
	env := testEnv(21, cfg, 6, 6, 100, 0.2)
	hist := Run(env, &sgdMethod{})
	if len(hist.Stats) == 0 {
		t.Fatal("no evaluations recorded")
	}
	for _, s := range hist.Stats {
		if s.Shot == nil {
			t.Fatalf("round %d: missing shot split", s.Round)
		}
	}
	// The test split is balanced and buckets partition the classes, so the
	// bucket accuracies recombine (2:2:2 classes at 6 classes).
	last := hist.Stats[len(hist.Stats)-1]
	recombined := (2*last.Shot.Head + 2*last.Shot.Medium + 2*last.Shot.Tail) / 6
	if d := recombined - last.TestAcc; d > 1e-9 || d < -1e-9 {
		t.Fatalf("shot buckets do not recombine: %v vs %v", recombined, last.TestAcc)
	}
	if hist.FinalShot() == nil {
		t.Fatal("FinalShot must surface the last split")
	}
}
