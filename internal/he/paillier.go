// Package he implements the additively homomorphic encryption substrate for
// FedWCM's private global-distribution gathering (Appendix C). The paper
// uses the BFV scheme via TenSEAL; neither exists here, so we substitute
// Paillier — which provides exactly the property the protocol needs
// (ciphertext addition = plaintext addition over integers) on top of
// math/big — plus BatchCrypt-style slot packing so a whole class-count
// vector rides in few ciphertexts. See DESIGN.md for the substitution
// argument; Table 6's size accounting is reproduced by the sizes helpers.
package he

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
type PublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
	G  *big.Int // generator, fixed to n+1
}

// PrivateKey is a Paillier key pair.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int // lcm(p−1, q−1)
	Mu     *big.Int // (L(g^λ mod n²))⁻¹ mod n
}

// Ciphertext is a Paillier ciphertext (an element of Z*_{n²}).
type Ciphertext struct {
	C *big.Int
}

// GenerateKeys creates a Paillier key pair with an n of roughly `bits` bits.
// Test code uses small sizes (≥128); the protocol default is 1024.
func GenerateKeys(bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, errors.New("he: modulus too small")
	}
	for attempt := 0; attempt < 64; attempt++ {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// μ = (L(g^λ mod n²))⁻¹ mod n
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // λ not invertible for this p,q draw; retry
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
	return nil, errors.New("he: key generation failed to find valid primes")
}

// lFunc computes L(x) = (x − 1)/n.
func lFunc(x, n *big.Int) *big.Int {
	r := new(big.Int).Sub(x, one)
	return r.Div(r, n)
}

// Encrypt encrypts m ∈ [0, n): c = g^m · r^n mod n².
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("he: plaintext out of range [0, n)")
	}
	// random r in [1, n) with gcd(r, n) = 1
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			break
		}
	}
	gm := new(big.Int).Exp(pk.G, m, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers the plaintext: m = L(c^λ mod n²)·μ mod n.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) *big.Int {
	cl := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m
}

// Add returns a ciphertext of m1 + m2 (mod n): c1·c2 mod n².
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// MulPlain returns a ciphertext of k·m (mod n): c^k mod n².
func (pk *PublicKey) MulPlain(a *Ciphertext, k *big.Int) *Ciphertext {
	return &Ciphertext{C: new(big.Int).Exp(a.C, k, pk.N2)}
}

// Bytes returns the serialised ciphertext (big-endian).
func (ct *Ciphertext) Bytes() []byte { return ct.C.Bytes() }

// CiphertextSize reports the worst-case ciphertext size in bytes for a key:
// ⌈bits(n²)/8⌉. Table 6 compares this against the plaintext size.
func (pk *PublicKey) CiphertextSize() int {
	return (pk.N2.BitLen() + 7) / 8
}
