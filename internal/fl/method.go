package fl

import (
	"fedwcm/internal/nn"
	"fedwcm/internal/xrand"
)

// Method is a federated learning algorithm. The engine guarantees:
//   - Init is called exactly once before the first round;
//   - LocalTrain is called once per sampled client per round, possibly from
//     multiple goroutines concurrently (methods must only write to state
//     that is disjoint per client, e.g. per-client control variates);
//   - Aggregate is called once per round, single-threaded, after all
//     LocalTrain calls return; it must update global in place.
type Method interface {
	Name() string
	Init(env *Env, dim int)
	LocalTrain(ctx *ClientCtx) *ClientResult
	Aggregate(round int, global []float64, results []*ClientResult)
}

// MetricsReporter lets a method expose per-round diagnostics (e.g. FedWCM's
// adaptive alpha) that the engine attaches to the history.
type MetricsReporter interface {
	RoundMetrics() map[string]float64
}

// ClientCtx is everything a method needs to run one client's local work.
type ClientCtx struct {
	Round  int
	Client *Client
	Env    *Env
	// Net is a worker-local network pre-loaded with the global weights.
	Net *nn.Network
	// Global is the read-only global weight vector at round start.
	Global []float64
	// RNG is the deterministic per-(round, client) stream.
	RNG *xrand.RNG
	// Scratch is the worker-owned reusable workspace. It may be nil when
	// the ctx was built outside the engine runtime (tests, benchmarks);
	// RunLocalSGD and CorrectionBuf fall back to fresh allocations then.
	Scratch *ClientScratch
	// WorkFrac is the fraction of the local step budget this client
	// completes (a straggler scenario's partial-work model). 0 and values
	// >= 1 mean full work; RunLocalSGD stops after ceil(frac · steps).
	WorkFrac float64
}

// CorrectionBuf returns a dim-sized buffer for the per-client correction a
// method passes through LocalOpts.Correction — scratch-backed when the ctx
// runs inside the engine runtime, freshly allocated otherwise. Contents are
// stale; callers fully overwrite it. The buffer is only valid until
// LocalTrain returns.
func (ctx *ClientCtx) CorrectionBuf(dim int) []float64 {
	if ctx.Scratch != nil && ctx.Scratch.dim == dim {
		return ctx.Scratch.CorrectionBuf()
	}
	return make([]float64, dim)
}

// ClientResult carries a client's round contribution back to the server.
type ClientResult struct {
	ClientID int
	N        int // local sample count
	Steps    int // local gradient steps actually taken
	// Delta = x_global − x_local_end: the gradient-like accumulated update
	// (η_l · Σ_b v_b). Aggregations average Deltas; dividing by η_l·Steps
	// recovers the gradient-scale momentum direction.
	Delta    []float64
	MeanLoss float64
	// PredHist optionally reports the client's predicted-class histogram
	// over its local training batches (used by FedGraB's balancer).
	PredHist []float64
	// Payload carries method-specific vectors (e.g. SCAFFOLD's control
	// variate update).
	Payload []float64
}

// WeightedDeltaInto accumulates dst -= etaG · Σ w_k Delta_k applied to the
// global vector — the common server update shared by most methods. Weights
// must be aligned with results; they are used as-is (callers normalise).
func WeightedDeltaInto(global []float64, etaG float64, results []*ClientResult, weights []float64) {
	for i, res := range results {
		if res == nil {
			continue
		}
		w := weights[i]
		if w == 0 {
			continue
		}
		s := etaG * w
		for j, d := range res.Delta {
			global[j] -= s * d
		}
	}
}

// GrowWeights returns a length-n weight slice backed by buf when its
// capacity suffices, allocating otherwise. Methods keep one buffer from Init
// onward so per-round weight vectors stop being per-round garbage.
func GrowWeights(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// UniformWeights returns 1/n for each of n results.
func UniformWeights(n int) []float64 {
	return UniformWeightsInto(nil, n)
}

// UniformWeightsInto is UniformWeights into a reusable buffer (see
// GrowWeights).
func UniformWeightsInto(buf []float64, n int) []float64 {
	w := GrowWeights(buf, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return w
}

// SizeWeights returns weights proportional to client sample counts.
func SizeWeights(results []*ClientResult) []float64 {
	return SizeWeightsInto(nil, results)
}

// SizeWeightsInto is SizeWeights into a reusable buffer (see GrowWeights).
func SizeWeightsInto(buf []float64, results []*ClientResult) []float64 {
	w := GrowWeights(buf, len(results))
	total := 0.0
	for i, r := range results {
		w[i] = 0
		if r != nil {
			w[i] = float64(r.N)
			total += w[i]
		}
	}
	if total == 0 {
		return UniformWeightsInto(w, len(results))
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// MomentumFrom computes the gradient-scale momentum direction
// Δ = Σ w_k · Delta_k / (η_l · Steps_k), writing into dst.
func MomentumFrom(dst []float64, etaL float64, results []*ClientResult, weights []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i, res := range results {
		if res == nil || res.Steps == 0 {
			continue
		}
		s := weights[i] / (etaL * float64(res.Steps))
		for j, d := range res.Delta {
			dst[j] += s * d
		}
	}
}
