package nn

import (
	"math"

	"fedwcm/internal/tensor"
)

// MaxPool2D applies max pooling over channel-outer flattened images.
type MaxPool2D struct {
	C, H, W    int
	K, Stride  int
	OutH, OutW int

	argmax []int // flat input index of each output element's winner
	inCols int

	fwd, bwd workspace
}

// NewMaxPool2D creates a pooling layer with kernel k and stride s.
func NewMaxPool2D(c, h, w, k, stride int) *MaxPool2D {
	outH := (h-k)/stride + 1
	outW := (w-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic("nn: MaxPool2D output would be empty")
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k, Stride: stride, OutH: outH, OutW: outW}
}

// OutDim returns the flattened output width.
func (l *MaxPool2D) OutDim() int { return l.C * l.OutH * l.OutW }

// Forward computes per-window maxima, remembering winner positions.
func (l *MaxPool2D) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if x.C != l.C*l.H*l.W {
		panic("nn: MaxPool2D input width mismatch")
	}
	n := x.R
	l.inCols = x.C
	out := l.fwd.get(n, l.OutDim())
	if cap(l.argmax) < n*l.OutDim() {
		l.argmax = make([]int, n*l.OutDim())
	}
	l.argmax = l.argmax[:n*l.OutDim()]
	tensor.ParallelFor(n, 4, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			img := x.Row(s)
			orow := out.Row(s)
			amRow := l.argmax[s*l.OutDim() : (s+1)*l.OutDim()]
			oi := 0
			for c := 0; c < l.C; c++ {
				base := c * l.H * l.W
				for oy := 0; oy < l.OutH; oy++ {
					for ox := 0; ox < l.OutW; ox++ {
						best := math.Inf(-1)
						bi := -1
						for ky := 0; ky < l.K; ky++ {
							iy := oy*l.Stride + ky
							for kx := 0; kx < l.K; kx++ {
								ix := ox*l.Stride + kx
								idx := base + iy*l.W + ix
								if img[idx] > best {
									best = img[idx]
									bi = idx
								}
							}
						}
						orow[oi] = best
						amRow[oi] = bi
						oi++
					}
				}
			}
		}
	})
	return out
}

// Backward routes gradients to the winning positions.
func (l *MaxPool2D) Backward(dout *tensor.Dense) *tensor.Dense {
	n := dout.R
	dx := l.bwd.getZeroed(n, l.inCols) // scatter-add target: must start clean
	for s := 0; s < n; s++ {
		drow := dout.Row(s)
		dxr := dx.Row(s)
		amRow := l.argmax[s*l.OutDim() : (s+1)*l.OutDim()]
		for i, g := range drow {
			dxr[amRow[i]] += g
		}
	}
	return dx
}

// Params returns nil.
func (l *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces each channel's spatial map to its mean:
// (N, C·H·W) → (N, C).
type GlobalAvgPool struct {
	C, H, W int

	fwd, bwd workspace
}

// NewGlobalAvgPool creates the reduction layer.
func NewGlobalAvgPool(c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{C: c, H: h, W: w}
}

// Forward averages each channel's spatial positions.
func (l *GlobalAvgPool) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if x.C != l.C*l.H*l.W {
		panic("nn: GlobalAvgPool input width mismatch")
	}
	sp := l.H * l.W
	out := l.fwd.get(x.R, l.C)
	inv := 1 / float64(sp)
	for s := 0; s < x.R; s++ {
		img := x.Row(s)
		orow := out.Row(s)
		for c := 0; c < l.C; c++ {
			orow[c] = tensor.Sum(img[c*sp:(c+1)*sp]) * inv
		}
	}
	return out
}

// Backward broadcasts each channel gradient uniformly across its positions.
func (l *GlobalAvgPool) Backward(dout *tensor.Dense) *tensor.Dense {
	sp := l.H * l.W
	inv := 1 / float64(sp)
	dx := l.bwd.get(dout.R, l.C*sp)
	for s := 0; s < dout.R; s++ {
		drow := dout.Row(s)
		dxr := dx.Row(s)
		for c := 0; c < l.C; c++ {
			g := drow[c] * inv
			seg := dxr[c*sp : (c+1)*sp]
			for i := range seg {
				seg[i] = g
			}
		}
	}
	return dx
}

// Params returns nil.
func (l *GlobalAvgPool) Params() []*Param { return nil }
