package tensor

// Fused elementwise kernels for the activation and normalisation hot paths.
// Each function documents its exact per-element expression; the AVX path
// (gemm_amd64.s) emits the same multiplies and adds in the same order with
// no FMA contraction, so results are bit-identical to the scalar tails on
// every input — including NaN (ordered compares treat it as "not ≤ 0") and
// negative zero (clamped to +0 exactly like the scalar branch).

// simdMinLen is the vector length below which the call overhead of an
// assembly kernel outweighs its throughput; shorter inputs stay scalar.
const simdMinLen = 8

// ReLUFwdInto computes dst[i] = x[i] if x[i] > 0, else +0 (NaN passes
// through, matching `if v <= 0 { 0 } else { v }`).
func ReLUFwdInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: ReLUFwdInto length mismatch")
	}
	i := 0
	if hasAVX && len(x) >= simdMinLen {
		blocks := len(x) >> 2
		reluFwdBlocksAVX(&dst[0], &x[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < len(x); i++ {
		if v := x[i]; v <= 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
}

// ReLUBwdInto computes dst[i] = dout[i] where x[i] > 0, else +0 — the same
// mask semantics as ReLUFwdInto, recomputed from the cached input.
func ReLUBwdInto(dst, dout, x []float64) {
	if len(dst) != len(dout) || len(dst) != len(x) {
		panic("tensor: ReLUBwdInto length mismatch")
	}
	i := 0
	if hasAVX && len(x) >= simdMinLen {
		blocks := len(x) >> 2
		reluBwdBlocksAVX(&dst[0], &dout[0], &x[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < len(x); i++ {
		if x[i] <= 0 {
			dst[i] = 0
		} else {
			dst[i] = dout[i]
		}
	}
}

// BNNormInto is the fused batch-norm normalisation row kernel. Per element:
//
//	d := x[i] - mean[i]; xmu[i] = d; out[i] = g[i]*d*inv[i] + b[i]
//
// with the product evaluated left to right, matching the scalar layer.
func BNNormInto(out, xmu, x, mean, g, b, inv []float64) {
	n := len(out)
	if len(xmu) != n || len(x) != n || len(mean) != n || len(g) != n || len(b) != n || len(inv) != n {
		panic("tensor: BNNormInto length mismatch")
	}
	i := 0
	if hasAVX && n >= simdMinLen {
		blocks := n >> 2
		bnNormBlocksAVX(&out[0], &xmu[0], &x[0], &mean[0], &g[0], &b[0], &inv[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < n; i++ {
		d := x[i] - mean[i]
		xmu[i] = d
		out[i] = g[i]*d*inv[i] + b[i]
	}
}

// BNVarAccum accumulates squared deviations: sq[i] += (x[i]-mean[i])².
func BNVarAccum(sq, x, mean []float64) {
	n := len(sq)
	if len(x) != n || len(mean) != n {
		panic("tensor: BNVarAccum length mismatch")
	}
	i := 0
	if hasAVX && n >= simdMinLen {
		blocks := n >> 2
		bnVarAccumBlocksAVX(&sq[0], &x[0], &mean[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < n; i++ {
		d := x[i] - mean[i]
		sq[i] += d * d
	}
}

// BNBwdAccum accumulates the two batch-norm backward reductions one row at
// a time: sumD[i] += dout[i]; sumDXmu[i] += dout[i]*xmu[i].
func BNBwdAccum(sumD, sumDXmu, dout, xmu []float64) {
	n := len(sumD)
	if len(sumDXmu) != n || len(dout) != n || len(xmu) != n {
		panic("tensor: BNBwdAccum length mismatch")
	}
	i := 0
	if hasAVX && n >= simdMinLen {
		blocks := n >> 2
		bnBwdAccumBlocksAVX(&sumD[0], &sumDXmu[0], &dout[0], &xmu[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < n; i++ {
		d := dout[i]
		sumD[i] += d
		sumDXmu[i] += d * xmu[i]
	}
}

// BNBwdDx is the fused batch-norm input-gradient row kernel. Per element:
//
//	dx[i] = k1[i]*dout[i] - k2[i] - k3[i]*xmu[i]
//
// evaluated left to right, matching the scalar layer.
func BNBwdDx(dx, dout, xmu, k1, k2, k3 []float64) {
	n := len(dx)
	if len(dout) != n || len(xmu) != n || len(k1) != n || len(k2) != n || len(k3) != n {
		panic("tensor: BNBwdDx length mismatch")
	}
	i := 0
	if hasAVX && n >= simdMinLen {
		blocks := n >> 2
		bnBwdDxBlocksAVX(&dx[0], &dout[0], &xmu[0], &k1[0], &k2[0], &k3[0], int64(blocks))
		i = blocks << 2
	}
	for ; i < n; i++ {
		dx[i] = k1[i]*dout[i] - k2[i] - k3[i]*xmu[i]
	}
}
