package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed mismatch at %d: %d vs %d", i, got, first[i])
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for r := uint64(0); r < 50; r++ {
		for c := uint64(0); c < 50; c++ {
			s := DeriveSeed(99, r, c)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at round=%d client=%d", r, c)
			}
			seen[s] = true
		}
	}
}

func TestDeriveSeedOrderSensitive(t *testing.T) {
	if DeriveSeed(1, 2) == DeriveSeed(2, 1) {
		t.Fatal("DeriveSeed should be order sensitive")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		r := New(seed)
		s := make([]int, m)
		for i := range s {
			s[i] = i * 3
		}
		r.ShuffleInts(s)
		// multiset preserved
		sum := 0
		for _, v := range s {
			sum += v
		}
		return sum == 3*m*(m-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	r := New(23)
	a := r.Split(1)
	b := r.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal", same)
	}
}
