package methods

import (
	"fedwcm/internal/fl"
	"fedwcm/internal/loss"
)

// FedCM is client-level momentum federated learning (Xu et al. 2021):
// every local step uses v = α·g + (1−α)·Δ_r, where Δ_r is the server's
// aggregate gradient direction from the previous round. The first round
// runs plain SGD (Δ_0 is undefined), matching common implementations.
//
// LossFor and Balanced implement the paper's "FedCM + Focal Loss",
// "FedCM + Balance Loss" and "FedCM + Balance Sampler" baselines without
// separate method types.
type FedCM struct {
	Alpha float64
	// LossFor, when set, builds a per-client loss (e.g. PriorCE over the
	// client's local class counts). Nil uses the environment default.
	LossFor func(c *fl.Client) loss.Loss
	// Balanced switches local training to the class-balanced sampler.
	Balanced bool
	// StaleScale, when set, replaces the engine's staleness discount in
	// buffered-async aggregation: update i is weighted ∝ StaleScale(s_i)
	// (normalised to a convex combination) in both the server step and the
	// momentum refresh — the staleness-corrected-momentum hook. Nil uses
	// the discounts the engine derived from AsyncConfig.
	StaleScale func(stale int) float64

	name         string
	env          *fl.Env
	momentum     []float64
	haveMomentum bool
	wbuf         []float64
	// lossCache holds one LossFor-built loss per client, materialised at
	// Init: client losses are pure functions of static client state, so
	// rebuilding them per round was pure allocation churn. Safe because a
	// client trains at most once per round, so no loss value is shared
	// between concurrent LocalTrain calls.
	lossCache []loss.Loss
}

// NewFedCM returns FedCM with mixing coefficient alpha (the paper uses 0.1).
func NewFedCM(alpha float64) *FedCM {
	return &FedCM{Alpha: alpha, name: "fedcm"}
}

// NewFedCMFocal returns the FedCM + Focal Loss baseline.
func NewFedCMFocal(alpha, gamma float64) *FedCM {
	return &FedCM{
		Alpha:   alpha,
		name:    "fedcm+focal",
		LossFor: func(*fl.Client) loss.Loss { return loss.Focal{Gamma: gamma} },
	}
}

// NewFedCMBalanceLoss returns the FedCM + Balance Loss (PriorCE over local
// class counts) baseline.
func NewFedCMBalanceLoss(alpha, tau float64) *FedCM {
	return &FedCM{
		Alpha: alpha,
		name:  "fedcm+balanceloss",
		LossFor: func(c *fl.Client) loss.Loss {
			counts := make([]float64, len(c.ClassCounts))
			for i, n := range c.ClassCounts {
				counts[i] = float64(n)
			}
			return loss.NewPriorCE(tau, counts)
		},
	}
}

// NewFedCMBalanceSampler returns the FedCM + Balance Sampler baseline.
func NewFedCMBalanceSampler(alpha float64) *FedCM {
	return &FedCM{Alpha: alpha, name: "fedcm+balancesampler", Balanced: true}
}

// Name implements fl.Method.
func (m *FedCM) Name() string { return m.name }

// Init implements fl.Method.
func (m *FedCM) Init(env *fl.Env, dim int) {
	m.env = env
	m.momentum = make([]float64, dim)
	m.haveMomentum = false
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
	m.lossCache = nil
	if m.LossFor != nil {
		m.lossCache = make([]loss.Loss, len(env.Clients))
		for k, c := range env.Clients {
			m.lossCache[k] = m.LossFor(c)
		}
	}
}

// LocalTrain implements fl.Method.
func (m *FedCM) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	opts := fl.LocalOpts{Alpha: m.Alpha, Balanced: m.Balanced}
	if m.haveMomentum {
		opts.Momentum = m.momentum
	}
	if m.lossCache != nil {
		opts.Loss = m.lossCache[ctx.Client.ID]
	}
	return fl.RunLocalSGD(ctx, opts)
}

// Aggregate implements fl.Method: uniform delta averaging plus momentum
// refresh Δ_{r+1} = Σ w_k·Delta_k/(η_l·B_k).
func (m *FedCM) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.UniformWeightsInto(m.wbuf, len(results))
	w := m.wbuf
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, w)
	fl.MomentumFrom(m.momentum, m.env.Cfg.EtaL, results, w)
	m.haveMomentum = true
}

// AggregateAsync implements fl.AsyncAggregator: the uniform base weights
// compose with the per-update staleness discounts and renormalise, so both
// the server step and the momentum refresh stay convex combinations in
// which stale updates count less (staleness-corrected momentum). With unit
// discounts and no StaleScale override this is exactly Aggregate — the
// degenerate-case goldens rely on that being bit-identical.
func (m *FedCM) AggregateAsync(info *fl.AsyncInfo, global []float64, results []*fl.ClientResult) {
	if info.Uniform && m.StaleScale == nil {
		m.Aggregate(info.Version-1, global, results)
		return
	}
	m.wbuf = fl.GrowWeights(m.wbuf, len(results))
	w := m.wbuf
	total := 0.0
	for i := range results {
		d := info.Discounts[i]
		if m.StaleScale != nil {
			d = m.StaleScale(info.Stale[i])
		}
		w[i] = d
		total += d
	}
	if total <= 0 {
		fl.UniformWeightsInto(w, len(results))
	} else {
		for i := range w {
			w[i] /= total
		}
	}
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, w)
	fl.MomentumFrom(m.momentum, m.env.Cfg.EtaL, results, w)
	m.haveMomentum = true
}
