package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// A crash leaves the log with its preallocated zero tail still attached
// (only Close trims it). Reopening that file must recover every
// acknowledged record and must not report a tear — the zero tail is the
// expected shape of a live log, not damage.
func TestPreallocZeroTailIsCleanEnd(t *testing.T) {
	path := walPath(t)
	l, _ := openT(t, path)
	for _, id := range []string{"job-a", "job-b"} {
		if err := l.Append(Record{Type: TypeSubmit, Job: id, Spec: []byte(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot the file as a crash would see it: durable frames followed by
	// the preallocated zeros, no Close to trim them.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) <= l.Size() {
		t.Fatalf("expected a preallocated tail: file %d bytes, framed %d", len(data), l.Size())
	}
	crashed := filepath.Join(t.TempDir(), "crashed.wal")
	if err := os.WriteFile(crashed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := openT(t, crashed)
	defer l2.Close()
	if rec.Torn {
		t.Fatalf("zero tail reported as torn: %+v", rec)
	}
	if len(rec.Jobs) != 2 || rec.Jobs[0].ID != "job-a" || rec.Jobs[1].ID != "job-b" {
		t.Fatalf("recovered jobs = %+v, want job-a, job-b", rec.Jobs)
	}
	// The reopened log appends on the framed boundary, not after the tail.
	if err := l2.Append(Record{Type: TypeSubmit, Job: "job-c", Spec: []byte(`{}`)}); err != nil {
		t.Fatal(err)
	}
}

// A frame torn mid-write with nothing but preallocated zeros after it is
// the crash signature: recovery truncates the tear and keeps the durable
// prefix.
func TestTornFrameThenZerosIsTruncated(t *testing.T) {
	keep := frameFor(Record{Type: TypeSubmit, Job: "job-keep", Spec: []byte(`{"x":1}`)})
	torn := frameFor(Record{Type: TypeSubmit, Job: "job-torn", Spec: []byte(`{"y":2}`)})
	data := []byte(fileMagic)
	data = append(data, keep...)
	data = append(data, torn[:len(torn)-3]...) // payload cut short…
	data = append(data, make([]byte, 4096)...) // …then the zeroed allocation
	path := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, path)
	defer l.Close()
	if !rec.Torn {
		t.Fatal("torn frame before zero tail not reported as a tear")
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-keep" {
		t.Fatalf("recovered jobs = %+v, want job-keep only", rec.Jobs)
	}
}

// A zero hole with intact frames after it means a batch whose pages hit
// disk out of order — the sync covering the hole never finished, so the
// frames beyond it were never acknowledged. That is a tear to truncate,
// never records to replay.
func TestZeroHoleBeforeFramesIsTornNotReplayed(t *testing.T) {
	first := frameFor(Record{Type: TypeSubmit, Job: "job-first", Spec: []byte(`{}`)})
	late := frameFor(Record{Type: TypeSubmit, Job: "job-late", Spec: []byte(`{}`)})
	data := []byte(fileMagic)
	data = append(data, first...)
	data = append(data, make([]byte, 64)...) // unpersisted page: still zero
	data = append(data, late...)             // later page that did persist
	path := filepath.Join(t.TempDir(), "hole.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, path)
	defer l.Close()
	if !rec.Torn {
		t.Fatal("zero hole before frames not reported as a tear")
	}
	for _, j := range rec.Jobs {
		if j.ID == "job-late" {
			t.Fatal("replayed a frame from beyond the zero hole")
		}
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-first" {
		t.Fatalf("recovered jobs = %+v, want job-first only", rec.Jobs)
	}
}

// Damage to a frame with real framed data after it is not a tear — the
// later frames prove the damaged one was once durable. The anti-bitrot
// contract holds under preallocation: fail closed.
func TestDamagedFrameBeforeFramesStaysCorrupt(t *testing.T) {
	a := frameFor(Record{Type: TypeSubmit, Job: "job-a", Spec: []byte(`{"n":1}`)})
	b := frameFor(Record{Type: TypeSubmit, Job: "job-b", Spec: []byte(`{"n":2}`)})
	data := []byte(fileMagic)
	data = append(data, a...)
	data[len(fileMagic)+headerLen+1] ^= 0x08 // corrupt a's payload
	data = append(data, b...)
	data = append(data, make([]byte, 1024)...) // preallocated tail too
	path := filepath.Join(t.TempDir(), "rot.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}
