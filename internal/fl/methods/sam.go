package methods

import (
	"fedwcm/internal/fl"
	"fedwcm/internal/tensor"
)

// FedSAM applies sharpness-aware minimisation locally: each step first
// ascends ρ along the normalised batch gradient, then descends using the
// gradient at the perturbed point.
type FedSAM struct {
	Rho  float64
	env  *fl.Env
	wbuf []float64
}

// NewFedSAM returns FedSAM with perturbation radius rho.
func NewFedSAM(rho float64) *FedSAM { return &FedSAM{Rho: rho} }

// Name implements fl.Method.
func (m *FedSAM) Name() string { return "fedsam" }

// Init implements fl.Method.
func (m *FedSAM) Init(env *fl.Env, dim int) {
	m.env = env
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
}

// LocalTrain implements fl.Method.
func (m *FedSAM) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	return fl.RunLocalSGD(ctx, fl.LocalOpts{SAMRho: m.Rho})
}

// Aggregate implements fl.Method.
func (m *FedSAM) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.SizeWeightsInto(m.wbuf, results)
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, m.wbuf)
}

// MoFedSAM combines FedSAM's local perturbation with FedCM's client-level
// momentum mixing.
type MoFedSAM struct {
	Alpha, Rho   float64
	env          *fl.Env
	momentum     []float64
	haveMomentum bool
	wbuf         []float64
}

// NewMoFedSAM returns MoFedSAM.
func NewMoFedSAM(alpha, rho float64) *MoFedSAM { return &MoFedSAM{Alpha: alpha, Rho: rho} }

// Name implements fl.Method.
func (m *MoFedSAM) Name() string { return "mofedsam" }

// Init implements fl.Method.
func (m *MoFedSAM) Init(env *fl.Env, dim int) {
	m.env = env
	m.momentum = make([]float64, dim)
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
}

// LocalTrain implements fl.Method.
func (m *MoFedSAM) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	opts := fl.LocalOpts{Alpha: m.Alpha, SAMRho: m.Rho}
	if m.haveMomentum {
		opts.Momentum = m.momentum
	}
	return fl.RunLocalSGD(ctx, opts)
}

// Aggregate implements fl.Method.
func (m *MoFedSAM) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.UniformWeightsInto(m.wbuf, len(results))
	w := m.wbuf
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, w)
	fl.MomentumFrom(m.momentum, m.env.Cfg.EtaL, results, w)
	m.haveMomentum = true
}

// FedLESAM perturbs along a *globally estimated* direction — the previous
// round's aggregate update — instead of the local batch gradient, saving
// one backward pass per step (simplified FedLESAM).
type FedLESAM struct {
	Rho     float64
	env     *fl.Env
	dir     []float64
	haveDir bool
	wbuf    []float64
}

// NewFedLESAM returns FedLESAM-lite with radius rho.
func NewFedLESAM(rho float64) *FedLESAM { return &FedLESAM{Rho: rho} }

// Name implements fl.Method.
func (m *FedLESAM) Name() string { return "fedlesam" }

// Init implements fl.Method.
func (m *FedLESAM) Init(env *fl.Env, dim int) {
	m.env = env
	m.dir = make([]float64, dim)
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
}

// LocalTrain implements fl.Method.
func (m *FedLESAM) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	opts := fl.LocalOpts{}
	if m.haveDir {
		opts.SAMRho = m.Rho
		opts.SAMGlobalDir = m.dir
	}
	return fl.RunLocalSGD(ctx, opts)
}

// Aggregate implements fl.Method.
func (m *FedLESAM) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.SizeWeightsInto(m.wbuf, results)
	w := m.wbuf
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, w)
	fl.MomentumFrom(m.dir, m.env.Cfg.EtaL, results, w)
	m.haveDir = tensor.Norm2(m.dir) > 0
}

// FedSMOO couples FedDyn's dynamic regularisation with SAM perturbation
// (simplified FedSMOO).
type FedSMOO struct {
	Rho, Mu float64
	env     *fl.Env
	h       [][]float64
	wbuf    []float64
}

// NewFedSMOO returns FedSMOO-lite.
func NewFedSMOO(rho, mu float64) *FedSMOO { return &FedSMOO{Rho: rho, Mu: mu} }

// Name implements fl.Method.
func (m *FedSMOO) Name() string { return "fedsmoo" }

// Init implements fl.Method.
func (m *FedSMOO) Init(env *fl.Env, dim int) {
	m.env = env
	m.h = make([][]float64, len(env.Clients))
	for k := range m.h {
		m.h[k] = make([]float64, dim)
	}
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
}

// LocalTrain implements fl.Method.
func (m *FedSMOO) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	k := ctx.Client.ID
	corr := ctx.CorrectionBuf(len(m.h[k]))
	for j := range corr {
		corr[j] = -m.h[k][j]
	}
	res := fl.RunLocalSGD(ctx, fl.LocalOpts{SAMRho: m.Rho, ProxMu: m.Mu, Correction: corr})
	tensor.Axpy(m.h[k], m.Mu, res.Delta)
	return res
}

// Aggregate implements fl.Method.
func (m *FedSMOO) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.UniformWeightsInto(m.wbuf, len(results))
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, m.wbuf)
}

// FedSpeed combines a proximal term with SAM-style gradient perturbation
// (simplified FedSpeed).
type FedSpeed struct {
	Rho, Mu float64
	env     *fl.Env
	wbuf    []float64
}

// NewFedSpeed returns FedSpeed-lite.
func NewFedSpeed(rho, mu float64) *FedSpeed { return &FedSpeed{Rho: rho, Mu: mu} }

// Name implements fl.Method.
func (m *FedSpeed) Name() string { return "fedspeed" }

// Init implements fl.Method.
func (m *FedSpeed) Init(env *fl.Env, dim int) {
	m.env = env
	m.wbuf = make([]float64, 0, env.Cfg.SampleClients)
}

// LocalTrain implements fl.Method.
func (m *FedSpeed) LocalTrain(ctx *fl.ClientCtx) *fl.ClientResult {
	return fl.RunLocalSGD(ctx, fl.LocalOpts{SAMRho: m.Rho, ProxMu: m.Mu})
}

// Aggregate implements fl.Method.
func (m *FedSpeed) Aggregate(round int, global []float64, results []*fl.ClientResult) {
	m.wbuf = fl.SizeWeightsInto(m.wbuf, results)
	fl.WeightedDeltaInto(global, m.env.Cfg.EtaG, results, m.wbuf)
}
