package sweep

import (
	"encoding/json"
	"testing"
)

// FuzzRunSpecFingerprint fuzzes the content-address canonicalization with
// arbitrary JSON spellings of a RunSpec. The invariants under test:
//
//  1. Idempotence: re-decoding a spec's CanonicalJSON and fingerprinting
//     again yields the same fingerprint. Key order, float formatting
//     ("0.1" vs "1e-1"), and zero-vs-omitted fields in the *input* JSON
//     all collapse in Go's typed decode, so any two spellings that decode
//     to the same spec hash identically — this closure property is what
//     makes the store's compute-at-most-once guarantee hold.
//  2. Defaults transparency: Defaults() never changes the fingerprint.
//  3. Stability: the canonical encoding itself round-trips byte-for-byte.
//
// The seed corpus under testdata/fuzz/FuzzRunSpecFingerprint is checked in
// and runs as a regression on every plain `go test` (and in CI's race job),
// so canonicalization bugs found by fuzzing stay fixed.
func FuzzRunSpecFingerprint(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"dataset":"cifar10-syn","method":"fedwcm","beta":0.1,"if":0.1,"partition":"equal","clients":20,"model":"auto","scale":1}`)
	f.Add(`{"cfg":{"seed":3,"rounds":20},"beta":0.5,"method":"fedavg","dataset":"cifar10-syn"}`)
	f.Add(`{"beta":1e-1,"if":0.10000}`)
	f.Add(`{"cfg":{"drop_prob":0.25,"eval_every":2}}`)
	f.Add(`{"cfg":{"scenario":{}}}`)
	f.Add(`{"cfg":{"scenario":{"availability":{"down_prob":0.2,"up_prob":0.4}}}}`)
	f.Add(`{"cfg":{"scenario":{"straggler":{"prob":0.5}}}}`)
	f.Add(`{"cfg":{"scenario":{"straggler":{"prob":0.5,"min_frac":0.2,"max_frac":0.8},"drift":{"to_if":0.05,"stages":4}}}}`)
	f.Add(`{"cfg":{"scenario":{"drift":{"to_beta":1,"to_if":0.05}}}}`)
	f.Add(`{"cfg":{"async":{}}}`)
	f.Add(`{"cfg":{"async":{"k":0,"concurrency":0}}}`)
	f.Add(`{"cfg":{"async":{"staleness":"poly"}}}`)
	f.Add(`{"cfg":{"async":{"k":2,"staleness":"poly","stale_exp":0.5,"jitter":0.25},"clock":true}}`)
	f.Add(`{"cfg":{"async":{"staleness":"uniform","concurrency":8}}}`)
	f.Add(`{"cfg":{"async":{"k":1},"scenario":{"straggler":{"prob":0.5}}}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		var s RunSpec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Skip() // not a RunSpec spelling; nothing to canonicalise
		}
		fp1, err := s.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint of decodable spec failed: %v", err)
		}
		canon, err := s.CanonicalJSON()
		if err != nil {
			t.Fatalf("canonical JSON failed: %v", err)
		}
		var s2 RunSpec
		if err := json.Unmarshal(canon, &s2); err != nil {
			t.Fatalf("canonical JSON does not decode: %v\n%s", err, canon)
		}
		fp2, err := s2.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint of canonical decode failed: %v", err)
		}
		if fp1 != fp2 {
			t.Fatalf("canonicalisation not idempotent:\n doc   %s\n canon %s\n fp1 %s\n fp2 %s", doc, canon, fp1, fp2)
		}
		canon2, err := s2.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(canon) != string(canon2) {
			t.Fatalf("canonical encoding unstable:\n first  %s\n second %s", canon, canon2)
		}
		fpDef, err := s.Defaults().Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fpDef != fp1 {
			t.Fatalf("Defaults() changed the fingerprint: %s vs %s\n doc %s", fpDef, fp1, doc)
		}
	})
}

// TestScenarioZeroVsOmittedFingerprint pins the specific zero-vs-omitted
// cases the fuzz target explores around the scenario block: an empty
// scenario (and empty sub-blocks) must hash like no scenario at all, while
// real dynamics must split the address.
func TestScenarioZeroVsOmittedFingerprint(t *testing.T) {
	docs := map[string]string{
		"omitted":     `{}`,
		"empty":       `{"cfg":{"scenario":{}}}`,
		"zero-blocks": `{"cfg":{"scenario":{"availability":{},"straggler":{},"drift":{}}}}`,
	}
	var base string
	for name, doc := range docs {
		var s RunSpec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatal(err)
		}
		fp := fpOf(t, s)
		if base == "" {
			base = fp
		} else if fp != base {
			t.Fatalf("%s scenario spelling changed the fingerprint", name)
		}
	}
	var dyn RunSpec
	if err := json.Unmarshal([]byte(`{"cfg":{"scenario":{"straggler":{"prob":0.5}}}}`), &dyn); err != nil {
		t.Fatal(err)
	}
	if fpOf(t, dyn) == base {
		t.Fatal("a real scenario must change the fingerprint")
	}
	// Spelled-out straggler defaults hash like the terse spelling.
	var terse, spelled RunSpec
	json.Unmarshal([]byte(`{"cfg":{"scenario":{"straggler":{"prob":0.5}}}}`), &terse)
	json.Unmarshal([]byte(`{"cfg":{"scenario":{"straggler":{"prob":0.5,"min_frac":0.2,"max_frac":0.8}}}}`), &spelled)
	if fpOf(t, terse) != fpOf(t, spelled) {
		t.Fatal("spelled-out scenario defaults must not change the fingerprint")
	}
}

// TestAsyncZeroVsOmittedFingerprint is the same pin for the async block: an
// empty or all-zero async config is the synchronous engine and must hash
// like the field being absent (pre-async specs keep their addresses), while
// any real async setting — or the virtual clock — splits the address.
func TestAsyncZeroVsOmittedFingerprint(t *testing.T) {
	docs := map[string]string{
		"omitted":   `{}`,
		"empty":     `{"cfg":{"async":{}}}`,
		"zero-k":    `{"cfg":{"async":{"k":0}}}`,
		"all-zero":  `{"cfg":{"async":{"k":0,"concurrency":0,"stale_exp":0,"jitter":0}}}`,
		"clock-off": `{"cfg":{"clock":false}}`,
	}
	var base string
	for name, doc := range docs {
		var s RunSpec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatal(err)
		}
		fp := fpOf(t, s)
		if base == "" {
			base = fp
		} else if fp != base {
			t.Fatalf("%s async spelling changed the fingerprint", name)
		}
	}
	var on RunSpec
	if err := json.Unmarshal([]byte(`{"cfg":{"async":{"staleness":"poly"}}}`), &on); err != nil {
		t.Fatal(err)
	}
	if fpOf(t, on) == base {
		t.Fatal("a real async config must change the fingerprint")
	}
	var clock RunSpec
	if err := json.Unmarshal([]byte(`{"cfg":{"clock":true}}`), &clock); err != nil {
		t.Fatal(err)
	}
	if fpOf(t, clock) == base {
		t.Fatal("the virtual clock changes the history, so it must change the fingerprint")
	}
	// Spelled-out async defaults hash like the terse spelling: K and
	// concurrency derive from the cohort, poly's exponent defaults to 0.5.
	var terse, spelled RunSpec
	json.Unmarshal([]byte(`{"cfg":{"sample_clients":8,"async":{"staleness":"poly"}}}`), &terse)
	json.Unmarshal([]byte(`{"cfg":{"sample_clients":8,"async":{"k":4,"concurrency":8,"staleness":"poly","stale_exp":0.5}}}`), &spelled)
	if fpOf(t, terse) != fpOf(t, spelled) {
		t.Fatal("spelled-out async defaults must not change the fingerprint")
	}
}
